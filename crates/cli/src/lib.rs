//! Implementation of the `plansample` command-line tool.
//!
//! The CLI wraps the full pipeline — SQL parsing, one-shot query
//! preparation, plan counting, USEPLAN execution, uniform sampling,
//! plan ranking, and differential validation — over the built-in TPC-H
//! catalog (SF-1 statistics) and a seeded synthetic micro database. It
//! is the paper's §4 "scripting primitives" experience as a standalone
//! binary:
//!
//! ```text
//! plansample-cli count    "SELECT ... FROM ... WHERE ..."
//! plansample-cli run      "SELECT ... OPTION (USEPLAN 8)"
//! plansample-cli sample   1000 "SELECT ..."
//! plansample-cli validate 200  "SELECT ..."
//! plansample-cli enumerate 20  "SELECT ..."
//! plansample-cli rank     "7.7 4.3 3.4 2.3 1.3" "SELECT ..."
//! plansample-cli memo     "SELECT ..."
//! ```
//!
//! Every invocation prepares the query **once** (`Session::prepare`) and
//! serves all of its sub-steps — counting, sampling, paging, execution —
//! from that one artifact. `stats` instead routes through a
//! [`plansample::PlanService`] and reports the cache counters plus the
//! prepared artifact's exact byte footprint (links / counts / memo).
//!
//! Global flags: `--cross-products`, `--seed N`, `--orders N` (micro
//! database size), `--threads N` (plan-space build / batched-sampling
//! parallelism; default `PLANSAMPLE_THREADS` or all cores).

#![warn(missing_docs)]

use plansample::session::Session;
use plansample::PreparedQuery;
use plansample_datagen::MicroScale;
use plansample_exec::render_table;
use plansample_memo::{GroupId, PhysId, PlanNode};
use plansample_optimizer::OptimizerConfig;
use plansample_stats::{Histogram, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The action to perform.
    pub command: Command,
    /// Allow Cartesian products in the plan space.
    pub cross_products: bool,
    /// Seed for data generation and sampling.
    pub seed: u64,
    /// Orders in the micro database (other tables scale along).
    pub orders: usize,
    /// Worker threads for plan-space construction and batched sampling
    /// (`None`: `PLANSAMPLE_THREADS` or all cores).
    pub threads: Option<usize>,
    /// Reactor (event-loop) threads for `serve`/`loadgen` servers
    /// (`0`: one per available core).
    pub reactors: usize,
    /// Persistent artifact store directory for `serve` (write-through
    /// persistence of every TPC-H preparation).
    pub artifact_dir: Option<String>,
    /// Warm the serving cache from `--artifact-dir` at startup.
    pub warm: bool,
    /// Per-reactor `SO_REUSEPORT` listeners for `serve` (falls back to
    /// the round-robin acceptor with a logged message).
    pub reuseport: bool,
}

/// The `artifact` subcommands: move prepared plan spaces on and off
/// disk and examine the on-disk format.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactAction {
    /// Prepare the query and publish it into a store directory.
    Save {
        /// Store directory (created if missing).
        dir: String,
        /// The query to prepare.
        sql: String,
    },
    /// Load the query's artifact from a store and prove it serves.
    Load {
        /// Store directory.
        dir: String,
        /// The query whose artifact to look up.
        sql: String,
    },
    /// Print one artifact file's section-level byte breakdown.
    Inspect {
        /// The `.plan` file to inspect.
        file: String,
    },
    /// Fully decode one artifact file, reporting the typed error on
    /// any corruption.
    Verify {
        /// The `.plan` file to verify.
        file: String,
    },
}

/// CLI actions.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Count the plans of a query.
    Count(String),
    /// Execute the optimizer's plan (or `OPTION (USEPLAN n)` if present).
    Run(String),
    /// Sample `k` plans and report the scaled-cost distribution.
    Sample(usize, String),
    /// Differentially validate `k` sampled plans.
    Validate(usize, String),
    /// List the first `k` plans with costs.
    Enumerate(usize, String),
    /// Rank a `USEPLAN`-style plan given as preorder expression ids.
    Rank(String, String),
    /// Dump the memo structure (Figure-2 style).
    Memo(String),
    /// Report serving-cache stats and the artifact's byte footprint.
    Stats(String),
    /// Serve the plan service over TCP at the given address (blocks).
    Serve(String),
    /// Load-test a server: connections, requests per connection, and
    /// the target address (`None` starts a throwaway in-process server).
    Loadgen(usize, usize, Option<String>),
    /// Persist, load, inspect, or verify on-disk plan-space artifacts.
    Artifact(ArtifactAction),
    /// Print usage.
    Help,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl std::error::Error for UsageError {}

/// Errors from executing a CLI command, with [`std::error::Error::source`]
/// chains down to the failing layer (optimizer, plan space, executor).
#[derive(Debug)]
pub enum CliError {
    /// SQL parsing failed; holds the rendered caret diagnostic.
    Sql(String),
    /// The plan argument of `rank` was malformed or not in the space.
    Plan(String),
    /// The pipeline failed (optimize / count / rank / execute).
    Run(plansample::Error),
    /// The network server or load generator failed.
    Serve(String),
    /// An artifact operation failed; the typed error says how.
    Artifact(plansample_artifact::ArtifactError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Sql(rendered) => write!(f, "{rendered}"),
            CliError::Plan(msg) => write!(f, "invalid plan specification: {msg}"),
            CliError::Run(e) => write!(f, "{e}"),
            CliError::Serve(msg) => write!(f, "{msg}"),
            CliError::Artifact(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Sql(_) | CliError::Plan(_) | CliError::Serve(_) => None,
            CliError::Run(e) => e.source(),
            CliError::Artifact(e) => e.source(),
        }
    }
}

impl From<plansample_artifact::ArtifactError> for CliError {
    fn from(e: plansample_artifact::ArtifactError) -> Self {
        CliError::Artifact(e)
    }
}

impl From<plansample::Error> for CliError {
    fn from(e: plansample::Error) -> Self {
        CliError::Run(e)
    }
}

impl From<plansample::SpaceError> for CliError {
    fn from(e: plansample::SpaceError) -> Self {
        CliError::Run(e.into())
    }
}

impl From<plansample::validate::ValidateError> for CliError {
    fn from(e: plansample::validate::ValidateError) -> Self {
        CliError::Run(e.into())
    }
}

/// Usage text.
pub const USAGE: &str = "\
plansample-cli — count, enumerate, sample, rank, and validate execution plans
            (Waas & Galindo-Legaria, SIGMOD 2000)

USAGE:
  plansample-cli [FLAGS] count           \"SQL\"
  plansample-cli [FLAGS] run             \"SQL [OPTION (USEPLAN n)]\"
  plansample-cli [FLAGS] sample    K     \"SQL\"
  plansample-cli [FLAGS] validate  K     \"SQL\"
  plansample-cli [FLAGS] enumerate K     \"SQL\"
  plansample-cli [FLAGS] rank     PLAN   \"SQL\"
  plansample-cli [FLAGS] memo            \"SQL\"
  plansample-cli [FLAGS] stats           \"SQL\"
  plansample-cli [FLAGS] serve           [ADDR]
  plansample-cli [FLAGS] loadgen         [CONNS REQS [ADDR]]
  plansample-cli [FLAGS] artifact save    DIR  \"SQL\"
  plansample-cli [FLAGS] artifact load    DIR  \"SQL\"
  plansample-cli [FLAGS] artifact inspect FILE
  plansample-cli [FLAGS] artifact verify  FILE

  PLAN is a plan tree in preorder as space-separated expression ids
  (`group.expr`, as printed by `memo` and `enumerate`), e.g.
  \"7.7 4.3 3.4 2.3 1.3\". `rank` prints the plan's number within the
  sub-space rooted at its root operator and, when the root lies in the
  memo's root group, its whole-space USEPLAN number.

  `stats` prepares the query through the serving cache and prints the
  cache counters plus the artifact's exact byte footprint (links,
  counts, memo — the size the byte-budgeted cache charges).

  `serve` exposes the plan service over TCP (default 127.0.0.1:4141;
  `--reactors` sets the event-loop count, `--threads` the worker pool
  per reactor) and blocks until killed. `loadgen` drives a mixed TPC-H
  + synthetic workload — CONNS concurrent connections, REQS requests
  each (default 100 x 50) — against ADDR, or against a throwaway
  in-process server when ADDR is omitted, and prints the per-reactor
  counter breakdown from the server's stats. The standalone
  `plansample-loadgen` binary adds report output and validation
  (`--out` / `--validate` / `--prev` / `--scaling`).

  `artifact save` prepares a query once and publishes the plan space
  into a store directory; `load` proves the artifact round-trips;
  `inspect` prints the file's section-level byte breakdown; `verify`
  fully decodes it and reports the typed error on any corruption.
  `serve --artifact-dir DIR` write-through-persists every TPC-H
  preparation there, and `--warm` preloads the cache from the store at
  startup, so restarts skip re-optimization entirely.

FLAGS:
  --cross-products   include Cartesian products in the space
  --seed N           RNG seed (default 42)
  --orders N         orders in the micro database (default 120)
  --threads N        worker threads for plan-space construction and
                     batched sampling (default: PLANSAMPLE_THREADS,
                     else all cores)
  --reactors N       event-loop threads for serve/loadgen servers
                     (default: one per available core)
  --artifact-dir DIR persistent artifact store for `serve`
                     (write-through persistence of preparations)
  --warm             preload the serving cache from --artifact-dir
  --reuseport        per-reactor SO_REUSEPORT listeners for `serve`
                     (falls back to the round-robin acceptor where
                     unsupported)

Queries run against the TPC-H schema (region, nation, supplier,
customer, part, partsupp, orders, lineitem) with SF-1 statistics and a
seeded synthetic micro database.";

/// Parses command-line arguments (without the program name).
pub fn parse_args<I, S>(args: I) -> Result<Cli, UsageError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut cross_products = false;
    let mut seed = 42u64;
    let mut orders = 120usize;
    let mut threads: Option<usize> = None;
    let mut reactors = 0usize;
    let mut artifact_dir: Option<String> = None;
    let mut warm = false;
    let mut reuseport = false;
    let mut positional: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        match arg {
            "--cross-products" => cross_products = true,
            "--warm" => warm = true,
            "--reuseport" => reuseport = true,
            "--artifact-dir" => {
                let v = iter
                    .next()
                    .ok_or_else(|| UsageError("--artifact-dir needs a directory".into()))?;
                artifact_dir = Some(v.as_ref().to_string());
            }
            "--threads" => {
                let v = iter
                    .next()
                    .ok_or_else(|| UsageError("--threads needs a value".into()))?;
                let n: usize = v
                    .as_ref()
                    .parse()
                    .map_err(|_| UsageError(format!("bad --threads value `{}`", v.as_ref())))?;
                if n == 0 {
                    return Err(UsageError("--threads needs at least 1".into()));
                }
                threads = Some(n);
            }
            "--reactors" => {
                let v = iter
                    .next()
                    .ok_or_else(|| UsageError("--reactors needs a value".into()))?;
                reactors = v
                    .as_ref()
                    .parse()
                    .map_err(|_| UsageError(format!("bad --reactors value `{}`", v.as_ref())))?;
            }
            "--seed" => {
                let v = iter
                    .next()
                    .ok_or_else(|| UsageError("--seed needs a value".into()))?;
                seed = v
                    .as_ref()
                    .parse()
                    .map_err(|_| UsageError(format!("bad --seed value `{}`", v.as_ref())))?;
            }
            "--orders" => {
                let v = iter
                    .next()
                    .ok_or_else(|| UsageError("--orders needs a value".into()))?;
                orders = v
                    .as_ref()
                    .parse()
                    .map_err(|_| UsageError(format!("bad --orders value `{}`", v.as_ref())))?;
            }
            "--help" | "-h" => {
                return Ok(Cli {
                    command: Command::Help,
                    cross_products,
                    seed,
                    orders,
                    threads,
                    reactors,
                    artifact_dir,
                    warm,
                    reuseport,
                })
            }
            flag if flag.starts_with("--") => {
                return Err(UsageError(format!("unknown flag `{flag}`")))
            }
            other => positional.push(other.to_string()),
        }
    }

    let command = match positional.first().map(String::as_str) {
        None => Command::Help,
        Some("count") => Command::Count(one_sql(&positional)?),
        Some("run") => Command::Run(one_sql(&positional)?),
        Some("memo") => Command::Memo(one_sql(&positional)?),
        Some("stats") => Command::Stats(one_sql(&positional)?),
        Some("sample") => {
            let (k, sql) = k_and_sql(&positional)?;
            Command::Sample(k, sql)
        }
        Some("validate") => {
            let (k, sql) = k_and_sql(&positional)?;
            Command::Validate(k, sql)
        }
        Some("enumerate") => {
            let (k, sql) = k_and_sql(&positional)?;
            Command::Enumerate(k, sql)
        }
        Some("rank") => match &positional[..] {
            [_, plan, sql] => Command::Rank(plan.clone(), sql.clone()),
            _ => {
                return Err(UsageError(
                    "`rank` takes a plan (preorder expression ids) and one SQL argument".into(),
                ))
            }
        },
        Some("serve") => match &positional[..] {
            [_] => Command::Serve("127.0.0.1:4141".into()),
            [_, addr] => Command::Serve(addr.clone()),
            _ => return Err(UsageError("`serve` takes at most an ADDR argument".into())),
        },
        Some("loadgen") => match &positional[..] {
            [_] => Command::Loadgen(100, 50, None),
            [_, conns, reqs] | [_, conns, reqs, _] => {
                let parse_count = |name: &str, v: &str| {
                    v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        UsageError(format!("`loadgen` needs a positive {name}, got `{v}`"))
                    })
                };
                Command::Loadgen(
                    parse_count("CONNS", conns)?,
                    parse_count("REQS", reqs)?,
                    positional.get(3).cloned(),
                )
            }
            _ => {
                return Err(UsageError(
                    "`loadgen` takes CONNS REQS and an optional ADDR".into(),
                ))
            }
        },
        Some("artifact") => {
            let rest: Vec<&str> = positional[1..].iter().map(String::as_str).collect();
            let action = match rest.as_slice() {
                ["save", dir, sql] => ArtifactAction::Save {
                    dir: dir.to_string(),
                    sql: sql.to_string(),
                },
                ["load", dir, sql] => ArtifactAction::Load {
                    dir: dir.to_string(),
                    sql: sql.to_string(),
                },
                ["inspect", file] => ArtifactAction::Inspect {
                    file: file.to_string(),
                },
                ["verify", file] => ArtifactAction::Verify {
                    file: file.to_string(),
                },
                _ => {
                    return Err(UsageError(
                        "`artifact` takes `save DIR SQL`, `load DIR SQL`, \
                         `inspect FILE`, or `verify FILE`"
                            .into(),
                    ))
                }
            };
            Command::Artifact(action)
        }
        Some(other) => return Err(UsageError(format!("unknown command `{other}`"))),
    };
    Ok(Cli {
        command,
        cross_products,
        seed,
        orders,
        threads,
        reactors,
        artifact_dir,
        warm,
        reuseport,
    })
}

fn one_sql(positional: &[String]) -> Result<String, UsageError> {
    match positional {
        [_, sql] => Ok(sql.clone()),
        _ => Err(UsageError(format!(
            "`{}` takes exactly one SQL argument",
            positional[0]
        ))),
    }
}

fn k_and_sql(positional: &[String]) -> Result<(usize, String), UsageError> {
    match positional {
        [cmd, k, sql] => {
            let k = k
                .parse()
                .map_err(|_| UsageError(format!("`{cmd}` needs a numeric count, got `{k}`")))?;
            Ok((k, sql.clone()))
        }
        _ => Err(UsageError(format!(
            "`{}` takes a count and one SQL argument",
            positional[0]
        ))),
    }
}

/// Parses one `group.expr` token in the 1-based display form used by
/// `memo` / `enumerate` output (e.g. `3.4` = group 3, expression 4).
fn parse_phys_id(token: &str, prepared: &PreparedQuery) -> Result<PhysId, CliError> {
    let bad = |what: &str| CliError::Plan(format!("{what} in expression id `{token}`"));
    let (g, e) = token
        .split_once('.')
        .ok_or_else(|| bad("missing `.` separator"))?;
    let group: u32 = g.parse().map_err(|_| bad("non-numeric group"))?;
    let expr: usize = e.parse().map_err(|_| bad("non-numeric expression"))?;
    let memo = prepared.memo();
    if group as usize >= memo.num_groups() {
        return Err(bad("unknown group"));
    }
    let n_exprs = memo.group(GroupId(group)).physical.len();
    if expr == 0 || expr > n_exprs {
        return Err(bad("unknown expression"));
    }
    Ok(PhysId {
        group: GroupId(group),
        index: expr - 1,
    })
}

/// Reconstructs a plan tree from its preorder expression-id listing,
/// using the prepared links for each operator's arity.
fn parse_plan(spec: &str, prepared: &PreparedQuery) -> Result<PlanNode, CliError> {
    let tokens: Vec<PhysId> = spec
        .split_whitespace()
        .map(|t| parse_phys_id(t, prepared))
        .collect::<Result<_, _>>()?;
    if tokens.is_empty() {
        return Err(CliError::Plan("empty plan specification".into()));
    }
    fn build(
        tokens: &[PhysId],
        pos: &mut usize,
        prepared: &PreparedQuery,
    ) -> Result<PlanNode, CliError> {
        let id = tokens[*pos];
        *pos += 1;
        let arity = prepared.space().links().arity_of(id);
        let mut children = Vec::with_capacity(arity);
        for _ in 0..arity {
            if *pos >= tokens.len() {
                return Err(CliError::Plan(format!(
                    "plan ends early: operator {id} expects {arity} child(ren)"
                )));
            }
            children.push(build(tokens, pos, prepared)?);
        }
        Ok(PlanNode { id, children })
    }
    let mut pos = 0;
    let plan = build(&tokens, &mut pos, prepared)?;
    if pos != tokens.len() {
        return Err(CliError::Plan(format!(
            "{} trailing expression id(s) after a complete plan",
            tokens.len() - pos
        )));
    }
    Ok(plan)
}

/// Executes a parsed command, returning the text to print.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    if cli.command == Command::Help {
        return Ok(USAGE.to_string());
    }
    if let Some(n) = cli.threads {
        threadpool::set_num_threads(n);
    }
    // The network and artifact commands parse their own input (or
    // none); they branch before the shared SQL parse.
    match &cli.command {
        Command::Serve(addr) => return run_serve(cli, addr),
        Command::Loadgen(conns, reqs, addr) => {
            return run_loadgen(cli, *conns, *reqs, addr.as_deref())
        }
        Command::Artifact(action) => return run_artifact(cli, action),
        _ => {}
    }
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let config = if cli.cross_products {
        OptimizerConfig::with_cross_products()
    } else {
        OptimizerConfig::default()
    };

    let sql = match &cli.command {
        Command::Count(s)
        | Command::Run(s)
        | Command::Sample(_, s)
        | Command::Validate(_, s)
        | Command::Enumerate(_, s)
        | Command::Rank(_, s)
        | Command::Memo(s)
        | Command::Stats(s) => s.clone(),
        Command::Help | Command::Serve(_) | Command::Loadgen(..) | Command::Artifact(_) => {
            unreachable!("handled above")
        }
    };
    let parsed =
        plansample_sql::parse(&catalog, &sql).map_err(|e| CliError::Sql(e.render(&sql)))?;
    let query = parsed.spec;

    // `stats` routes through the serving cache instead of a one-shot
    // session (it reports the cache's own counters) and needs no data.
    if let Command::Stats(_) = &cli.command {
        return run_stats(catalog, config, &query);
    }

    let scale = MicroScale {
        orders: cli.orders,
        ..Default::default()
    };
    let db = plansample_datagen::generate(&catalog, &tables, &scale, cli.seed);
    let session = Session::with_config(catalog, db, config);
    // One preparation serves every sub-step of every command below.
    let prepared = session.prepare(&query)?;
    let mut out = String::new();

    match &cli.command {
        Command::Help
        | Command::Stats(_)
        | Command::Serve(_)
        | Command::Loadgen(..)
        | Command::Artifact(_) => {
            unreachable!("handled above")
        }
        Command::Count(_) => {
            let memo = prepared.memo();
            let _ = writeln!(
                out,
                "{} groups, {} physical expressions",
                memo.num_groups(),
                memo.num_physical()
            );
            let _ = writeln!(out, "{} complete execution plans", prepared.total());
        }
        Command::Run(_) => {
            let outcome = session.execute_prepared(&prepared, parsed.useplan.as_ref())?;
            match &outcome.rank {
                Some(rank) => {
                    let _ = writeln!(
                        out,
                        "plan {rank} of {} (scaled cost {:.2}):",
                        outcome.space_size, outcome.scaled_cost
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "optimizer's plan (cost {:.0}, space of {} plans):",
                        outcome.plan_cost, outcome.space_size
                    );
                }
            }
            let _ = writeln!(out, "{}", outcome.plan_text);
            if !parsed.order_by.is_empty() {
                // Reconstruct the executed plan (the outcome carries only
                // its text) and check the delivered order against the
                // requested one.
                let plan = match &outcome.rank {
                    Some(rank) => prepared.unrank(rank)?,
                    None => prepared.best().0.clone(),
                };
                let verdict = if prepared.satisfies_order(&plan, &parsed.order_by) {
                    "delivered"
                } else {
                    "NOT delivered (an explicit sort would be required)"
                };
                let _ = writeln!(out, "requested order: {verdict}");
            }
            let _ = write!(out, "{}", render_table(&outcome.table, 20));
        }
        Command::Sample(k, _) => {
            let mut rng = StdRng::seed_from_u64(cli.seed);
            // The flat batch path: unranking on the fastest fixed-width
            // tier the space qualifies for (u64 → u128 → exact Nat), no
            // per-plan tree allocation.
            let mut batch = plansample::PlanBatch::new();
            prepared.sample_batch_flat(&mut rng, *k, &mut batch);
            let costs: Vec<f64> = batch
                .iter()
                .map(|ids| prepared.scaled_cost_ids(ids))
                .collect();
            let s = Summary::of(&costs);
            let _ = writeln!(
                out,
                "{k} uniform samples from {} plans ({} unranking tier)",
                prepared.total(),
                prepared.tier()
            );
            let _ = writeln!(
                out,
                "scaled costs: min {:.2}  mean {:.1}  max {:.1}",
                s.min(),
                s.mean(),
                s.max()
            );
            let _ = writeln!(
                out,
                "within 2x: {:.2}%   within 10x: {:.2}%",
                100.0 * s.fraction_below(2.0),
                100.0 * s.fraction_below(10.0)
            );
            let _ = writeln!(out, "\nlower 50% of sampled costs:");
            let hist = Histogram::lower_fraction(&costs, 0.5, 16);
            let _ = write!(out, "{}", hist.render(40));
        }
        Command::Validate(k, _) => {
            let mut rng = StdRng::seed_from_u64(cli.seed);
            let report = prepared.space().validate_sampled(
                session.catalog(),
                session.database(),
                *k,
                &mut rng,
            )?;
            let _ = writeln!(out, "{report}");
            for m in &report.mismatches {
                let _ = writeln!(
                    out,
                    "  MISMATCH at plan {} ({} rows vs {} expected) — reproduce with OPTION (USEPLAN {})",
                    m.rank, m.actual_rows, m.expected_rows, m.rank
                );
            }
        }
        Command::Enumerate(k, _) => {
            let _ = writeln!(out, "first {k} of {} plans:", prepared.total());
            for (rank, plan) in prepared.enumerate().take(*k).enumerate() {
                let ops: Vec<String> = plan
                    .preorder_ids()
                    .iter()
                    .map(|id| format!("{}[{id}]", prepared.memo().phys(*id).op.name()))
                    .collect();
                let _ = writeln!(
                    out,
                    "{rank:>6}  cost {:>12.0}  {}",
                    plan.total_cost(prepared.memo()),
                    ops.join(" ")
                );
            }
        }
        Command::Rank(plan_spec, _) => {
            let plan = parse_plan(plan_spec, &prepared)?;
            let rooted = prepared.rank_rooted(&plan)?;
            let _ = writeln!(
                out,
                "plan rooted at {}: rank {rooted} of the {}-plan sub-space",
                plan.id,
                prepared.count_rooted(plan.id)
            );
            if plan.id.group == prepared.memo().root() {
                let whole = prepared.rank(&plan)?;
                let _ = writeln!(
                    out,
                    "whole-space rank {whole} of {} — reproduce with OPTION (USEPLAN {whole})",
                    prepared.total()
                );
            } else {
                let _ = writeln!(
                    out,
                    "(root operator lies in group {}, not the memo root group {} — no \
                     whole-space USEPLAN number)",
                    plan.id.group.0,
                    prepared.memo().root().0
                );
            }
        }
        Command::Memo(_) => {
            let _ = write!(
                out,
                "{}",
                plansample_memo::render_memo(prepared.memo(), prepared.query(), session.catalog())
            );
        }
    }
    Ok(out)
}

/// The `serve` command: expose the plan service over TCP and block
/// until the process is killed. Listens on `addr`; `--reactors` sets
/// the event-loop count (0 = one per core), `--threads` the worker
/// pool per reactor, `--cross-products` widens the plan spaces served.
fn run_serve(cli: &Cli, addr: &str) -> Result<String, CliError> {
    let config = plansample_serve::ServerConfig {
        addr: addr.to_string(),
        reactors: cli.reactors,
        workers: cli.threads.unwrap_or(4),
        cross_products: cli.cross_products,
        artifact_dir: cli.artifact_dir.clone().map(Into::into),
        warm: cli.warm,
        reuseport: cli.reuseport,
        ..Default::default()
    };
    let handle = plansample_serve::server::start(config)
        .map_err(|e| CliError::Serve(format!("cannot listen on {addr}: {e}")))?;
    eprintln!(
        "plansample serving on {} with {} reactor(s)",
        handle.addr(),
        plansample_serve::server::resolve_reactors(cli.reactors)
    );
    handle.join();
    Ok(String::new())
}

/// The `loadgen` command: a thin wrapper over
/// [`plansample_serve::loadgen`] returning the human summary (the
/// standalone binary adds JSON output and validation).
fn run_loadgen(
    cli: &Cli,
    connections: usize,
    requests: usize,
    addr: Option<&str>,
) -> Result<String, CliError> {
    let mut inline = None;
    let target = match addr {
        Some(addr) => addr
            .parse()
            .map_err(|e| CliError::Serve(format!("bad address {addr:?}: {e}")))?,
        None => {
            let handle = plansample_serve::server::start(plansample_serve::ServerConfig {
                reactors: cli.reactors,
                workers: cli.threads.unwrap_or(4),
                cross_products: cli.cross_products,
                ..Default::default()
            })
            .map_err(|e| CliError::Serve(format!("cannot start inline server: {e}")))?;
            let addr = handle.addr();
            inline = Some(handle);
            addr
        }
    };
    let report = plansample_serve::loadgen::run(
        target,
        &plansample_serve::LoadgenConfig {
            connections,
            requests_per_connection: requests,
            seed: cli.seed,
            ..Default::default()
        },
    );
    if let Some(handle) = inline {
        handle.stop();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} connections x {requests} requests against {target}",
        report.connections
    );
    let _ = writeln!(
        out,
        "sent {}  ok {}  overloaded {}  app_errors {}  protocol_errors {}",
        report.sent, report.ok, report.overloaded, report.app_errors, report.protocol_errors
    );
    let _ = writeln!(
        out,
        "elapsed {:.3}s  throughput {:.0} req/s  latency us p50 {} p99 {} p999 {}",
        report.elapsed.as_secs_f64(),
        report.throughput(),
        report.latency_us(0.50),
        report.latency_us(0.99),
        report.latency_us(0.999),
    );
    if let Some(s) = &report.server {
        let _ = writeln!(
            out,
            "server: requests {} (admitted {}, queue-shed {}) across {} reactor(s)",
            s.requests,
            s.requests_admitted,
            s.shed_queue,
            s.per_reactor.len()
        );
        for (i, r) in s.per_reactor.iter().enumerate() {
            let _ = writeln!(
                out,
                "  reactor {i}: requests {}  connections {}",
                r.requests, r.connections
            );
        }
    }
    if report.protocol_errors > 0 {
        return Err(CliError::Serve(format!(
            "{} protocol error(s) during the run:\n{out}",
            report.protocol_errors
        )));
    }
    Ok(out)
}

/// The `stats` command: prepare through a [`plansample::PlanService`],
/// touch the cache a second time to demonstrate a hit, and print the
/// service counters plus the artifact's exact byte breakdown — the
/// command-line view of the memory accounting the byte-budgeted cache
/// charges (inline-`Nat` counts, CSR links, shrunken memo).
fn run_stats(
    catalog: plansample_catalog::Catalog,
    config: OptimizerConfig,
    query: &plansample_query::QuerySpec,
) -> Result<String, CliError> {
    let service = plansample::PlanService::new(catalog, config, 4);
    let prepared = service.get_or_prepare(query)?;
    let _hit = service.get_or_prepare(query)?;

    let space = prepared.space();
    let memo = prepared.memo();
    let exprs = memo.num_physical().max(1);
    let per = |bytes: usize| bytes as f64 / exprs as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} complete execution plans over {} groups / {} physical expressions",
        prepared.total(),
        memo.num_groups(),
        memo.num_physical()
    );
    let _ = writeln!(out, "\nprepared artifact footprint:");
    let links = space.links();
    let _ = writeln!(
        out,
        "  links   {:>10} bytes  ({:>6.1}/expr)  {} interned lists, {} pooled refs",
        links.size_bytes(),
        per(links.size_bytes()),
        links.num_lists(),
        links.num_pooled_links()
    );
    let _ = writeln!(
        out,
        "  counts  {:>10} bytes  ({:>6.1}/expr)  total N is {} limb(s)",
        space.counts().size_bytes(),
        per(space.counts().size_bytes()),
        prepared.total().limbs().len().max(1)
    );
    let _ = writeln!(
        out,
        "  memo    {:>10} bytes  ({:>6.1}/expr)",
        memo.size_bytes(),
        per(memo.size_bytes())
    );
    let _ = writeln!(
        out,
        "  total   {:>10} bytes  ({:>6.1}/expr)  <- charged by byte-budgeted caches",
        prepared.size_bytes(),
        per(prepared.size_bytes())
    );

    let stats = service.stats();
    let _ = writeln!(
        out,
        "\nservice: {} hit(s), {} miss(es), {} coalesced, {} eviction(s); \
         {} cached artifact(s), {} resident bytes",
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.evictions,
        stats.entries,
        stats.resident_bytes
    );
    let _ = writeln!(
        out,
        "build threads: {} (override with --threads N or PLANSAMPLE_THREADS)",
        threadpool::num_threads()
    );
    Ok(out)
}

/// The `artifact` command family: publish a prepared plan space into a
/// store directory, load it back, and examine the on-disk format —
/// the operational workflow behind `serve --artifact-dir --warm`.
fn run_artifact(cli: &Cli, action: &ArtifactAction) -> Result<String, CliError> {
    use plansample_artifact::{ArtifactError, ArtifactStore};

    let prepare = |sql: &str| -> Result<
        (plansample_query::QuerySpec, OptimizerConfig, PreparedQuery),
        CliError,
    > {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let config = if cli.cross_products {
            OptimizerConfig::with_cross_products()
        } else {
            OptimizerConfig::default()
        };
        let parsed =
            plansample_sql::parse(&catalog, sql).map_err(|e| CliError::Sql(e.render(sql)))?;
        let prepared = PreparedQuery::prepare(&catalog, &parsed.spec, &config)?;
        Ok((parsed.spec, config, prepared))
    };

    let mut out = String::new();
    match action {
        ArtifactAction::Save { dir, sql } => {
            let (_, _, prepared) = prepare(sql)?;
            let store = ArtifactStore::open(dir)?;
            let path = store.save(&prepared)?;
            let bytes = std::fs::metadata(&path)
                .map(|m| m.len())
                .map_err(ArtifactError::from)?;
            let _ = writeln!(
                out,
                "published {} ({bytes} bytes, {} plans over {} groups / {} physical expressions)",
                path.display(),
                prepared.total(),
                prepared.memo().num_groups(),
                prepared.memo().num_physical()
            );
        }
        ArtifactAction::Load { dir, sql } => {
            // Preparing here would defeat the point; only the parse and
            // the load run, so a hit proves the artifact alone serves.
            let (catalog, _) = plansample_catalog::tpch::catalog();
            let config = if cli.cross_products {
                OptimizerConfig::with_cross_products()
            } else {
                OptimizerConfig::default()
            };
            let parsed =
                plansample_sql::parse(&catalog, sql).map_err(|e| CliError::Sql(e.render(sql)))?;
            let store = ArtifactStore::open(dir)?;
            let loaded = store.load(&parsed.spec, &config)?.ok_or_else(|| {
                CliError::Artifact(ArtifactError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("no artifact for this query + config under {dir}"),
                )))
            })?;
            let (_, best_cost) = loaded.best();
            let _ = writeln!(
                out,
                "loaded {} plans over {} groups / {} physical expressions \
                 (best cost {best_cost:.0}) without re-optimizing",
                loaded.total(),
                loaded.memo().num_groups(),
                loaded.memo().num_physical()
            );
        }
        ArtifactAction::Inspect { file } => {
            let bytes = std::fs::read(file).map_err(ArtifactError::from)?;
            let info = plansample_artifact::inspect(&bytes)?;
            let _ = writeln!(
                out,
                "{file}: format v{}, {} bytes, fingerprint {}",
                info.version, info.total_bytes, info.fingerprint
            );
            let _ = writeln!(out, "\n  section    offset        bytes      checksum");
            for s in &info.sections {
                let _ = writeln!(
                    out,
                    "  {:<8} {:>8} {:>12}  {:016x}",
                    s.name, s.offset, s.len, s.checksum
                );
            }
        }
        ArtifactAction::Verify { file } => {
            let bytes = std::fs::read(file).map_err(ArtifactError::from)?;
            let prepared = plansample_artifact::decode(&bytes)?;
            let _ = writeln!(
                out,
                "OK: {file} decodes to {} plans over {} groups / {} physical expressions",
                prepared.total(),
                prepared.memo().num_groups(),
                prepared.memo().num_physical()
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_commands() {
        let cli = parse_args([
            "--cross-products",
            "--seed",
            "7",
            "count",
            "SELECT * FROM nation",
        ])
        .unwrap();
        assert!(cli.cross_products);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.command, Command::Count("SELECT * FROM nation".into()));

        let cli = parse_args(["sample", "100", "SELECT * FROM nation"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Sample(100, "SELECT * FROM nation".into())
        );
        assert_eq!(cli.seed, 42);

        let cli = parse_args(["rank", "1.1 0.1", "SELECT * FROM nation"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Rank("1.1 0.1".into(), "SELECT * FROM nation".into())
        );
    }

    #[test]
    fn parses_threads_flag_and_stats_command() {
        let cli = parse_args(["--threads", "3", "stats", "SELECT * FROM nation"]).unwrap();
        assert_eq!(cli.threads, Some(3));
        assert_eq!(cli.command, Command::Stats("SELECT * FROM nation".into()));
        assert_eq!(parse_args(["count", "S"]).unwrap().threads, None);
    }

    #[test]
    fn stats_command_reports_footprint_and_cache_counters() {
        let out = run(&cli(Command::Stats(TWO_WAY.into()))).unwrap();
        assert!(out.contains("complete execution plans"), "{out}");
        for section in ["links", "counts", "memo", "total", "/expr"] {
            assert!(out.contains(section), "missing `{section}` in:\n{out}");
        }
        assert!(out.contains("1 hit(s), 1 miss(es)"), "{out}");
        assert!(out.contains("resident bytes"), "{out}");
        assert!(out.contains("build threads:"), "{out}");
    }

    #[test]
    fn parses_network_commands() {
        assert_eq!(
            parse_args(["serve"]).unwrap().command,
            Command::Serve("127.0.0.1:4141".into())
        );
        assert_eq!(
            parse_args(["serve", "0.0.0.0:9000"]).unwrap().command,
            Command::Serve("0.0.0.0:9000".into())
        );
        assert_eq!(
            parse_args(["loadgen"]).unwrap().command,
            Command::Loadgen(100, 50, None)
        );
        assert_eq!(
            parse_args(["loadgen", "8", "5"]).unwrap().command,
            Command::Loadgen(8, 5, None)
        );
        assert_eq!(
            parse_args(["loadgen", "8", "5", "127.0.0.1:4141"])
                .unwrap()
                .command,
            Command::Loadgen(8, 5, Some("127.0.0.1:4141".into()))
        );
        assert!(parse_args(["serve", "a", "b"]).is_err());
        assert!(parse_args(["loadgen", "0", "5"]).is_err());
        assert!(parse_args(["loadgen", "8", "none"]).is_err());
    }

    #[test]
    fn reactors_flag_parses_and_defaults_to_per_core() {
        assert_eq!(parse_args(["serve", "127.0.0.1:0"]).unwrap().reactors, 0);
        assert_eq!(
            parse_args(["--reactors", "2", "serve", "127.0.0.1:0"])
                .unwrap()
                .reactors,
            2
        );
        assert!(parse_args(["--reactors"]).is_err());
        assert!(parse_args(["--reactors", "two", "serve", "127.0.0.1:0"]).is_err());
    }

    #[test]
    fn parses_artifact_commands_and_serve_flags() {
        assert_eq!(
            parse_args(["artifact", "save", "/tmp/store", "SELECT * FROM nation"])
                .unwrap()
                .command,
            Command::Artifact(ArtifactAction::Save {
                dir: "/tmp/store".into(),
                sql: "SELECT * FROM nation".into()
            })
        );
        assert_eq!(
            parse_args(["artifact", "inspect", "f.plan"])
                .unwrap()
                .command,
            Command::Artifact(ArtifactAction::Inspect {
                file: "f.plan".into()
            })
        );
        assert_eq!(
            parse_args(["artifact", "verify", "f.plan"])
                .unwrap()
                .command,
            Command::Artifact(ArtifactAction::Verify {
                file: "f.plan".into()
            })
        );
        let cli = parse_args([
            "--artifact-dir",
            "/tmp/store",
            "--warm",
            "--reuseport",
            "serve",
            "127.0.0.1:0",
        ])
        .unwrap();
        assert_eq!(cli.artifact_dir.as_deref(), Some("/tmp/store"));
        assert!(cli.warm);
        assert!(cli.reuseport);
        assert!(parse_args(["artifact"]).is_err());
        assert!(parse_args(["artifact", "save", "/tmp/x"]).is_err());
        assert!(parse_args(["artifact", "frobnicate", "f"]).is_err());
        assert!(parse_args(["--artifact-dir"]).is_err());
    }

    #[test]
    fn artifact_save_load_inspect_verify_workflow() {
        let dir =
            std::env::temp_dir().join(format!("plansample-cli-artifact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();

        // A load before any save is a clean, typed miss.
        let err = run(&cli(Command::Artifact(ArtifactAction::Load {
            dir: dir_s.clone(),
            sql: TWO_WAY.into(),
        })))
        .unwrap_err();
        assert!(err.to_string().contains("no artifact"), "{err}");

        let out = run(&cli(Command::Artifact(ArtifactAction::Save {
            dir: dir_s.clone(),
            sql: TWO_WAY.into(),
        })))
        .unwrap();
        assert!(out.contains("published"), "{out}");
        let path = out
            .split_whitespace()
            .nth(1)
            .expect("published <path> ...")
            .to_string();

        let out = run(&cli(Command::Artifact(ArtifactAction::Load {
            dir: dir_s.clone(),
            sql: TWO_WAY.into(),
        })))
        .unwrap();
        assert!(out.contains("without re-optimizing"), "{out}");

        let out = run(&cli(Command::Artifact(ArtifactAction::Inspect {
            file: path.clone(),
        })))
        .unwrap();
        for section in ["meta", "query", "config", "memo", "links", "counts", "best"] {
            assert!(out.contains(section), "missing `{section}` in:\n{out}");
        }

        let out = run(&cli(Command::Artifact(ArtifactAction::Verify {
            file: path.clone(),
        })))
        .unwrap();
        assert!(out.starts_with("OK:"), "{out}");

        // Corrupt the file: verify must fail with the typed checksum
        // error, surfaced through the CLI error chain.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = run(&cli(Command::Artifact(ArtifactAction::Verify {
            file: path,
        })))
        .unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loadgen_command_runs_inline_cleanly() {
        let out = run(&cli(Command::Loadgen(3, 4, None))).unwrap();
        assert!(out.contains("sent 12  ok"), "{out}");
        assert!(out.contains("protocol_errors 0"), "{out}");
        assert!(out.contains("p999"), "{out}");
    }

    #[test]
    fn loadgen_command_rejects_bad_address() {
        let err = run(&cli(Command::Loadgen(1, 1, Some("not-an-addr".into())))).unwrap_err();
        assert!(err.to_string().contains("bad address"), "{err}");
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse_args(["bogus", "x"]).is_err());
        assert!(parse_args(["--seed"]).is_err());
        assert!(parse_args(["--threads"]).is_err());
        assert!(parse_args(["--threads", "zero", "count", "S"]).is_err());
        assert!(parse_args(["--threads", "0", "count", "S"]).is_err());
        assert!(parse_args(["stats"]).is_err());
        assert!(parse_args(["--seed", "abc", "count", "S"]).is_err());
        assert!(parse_args(["count"]).is_err());
        assert!(parse_args(["sample", "notanumber", "S"]).is_err());
        assert!(parse_args(["--unknown-flag", "count", "S"]).is_err());
        assert!(parse_args(["count", "a", "b"]).is_err());
        assert!(parse_args(["rank", "1.1"]).is_err());
    }

    #[test]
    fn empty_args_and_help() {
        assert_eq!(
            parse_args(Vec::<String>::new()).unwrap().command,
            Command::Help
        );
        assert_eq!(parse_args(["--help"]).unwrap().command, Command::Help);
        let text = run(&parse_args(["--help"]).unwrap()).unwrap();
        assert!(text.contains("USAGE"));
    }

    fn cli(command: Command) -> Cli {
        Cli {
            command,
            cross_products: false,
            seed: 42,
            orders: 60,
            threads: None,
            reactors: 0,
            artifact_dir: None,
            warm: false,
            reuseport: false,
        }
    }

    const TWO_WAY: &str = "SELECT * FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey";

    #[test]
    fn count_command_end_to_end() {
        let out = run(&cli(Command::Count(TWO_WAY.into()))).unwrap();
        assert!(out.contains("complete execution plans"));
    }

    #[test]
    fn run_command_with_useplan() {
        let out = run(&cli(Command::Run(format!("{TWO_WAY} OPTION (USEPLAN 5)")))).unwrap();
        assert!(out.contains("plan 5 of"));
        assert!(out.contains("rows)"));
    }

    #[test]
    fn run_command_reports_order_by_satisfaction() {
        // Whether the chosen plan happens to deliver the order varies by
        // plan; the report line must appear either way, and only when an
        // ORDER BY is present.
        let out = run(&cli(Command::Run(format!("{TWO_WAY} ORDER BY n_name")))).unwrap();
        assert!(out.contains("requested order: "), "missing verdict:\n{out}");
        let out = run(&cli(Command::Run(format!(
            "{TWO_WAY} ORDER BY n_name OPTION (USEPLAN 2)"
        ))))
        .unwrap();
        assert!(out.contains("requested order: "), "missing verdict:\n{out}");
        let out = run(&cli(Command::Run(TWO_WAY.into()))).unwrap();
        assert!(!out.contains("requested order"));
    }

    #[test]
    fn run_command_optimizer_plan() {
        let out = run(&cli(Command::Run(
            "SELECT COUNT(*) FROM supplier s, nation n WHERE s.s_nationkey = n.n_nationkey".into(),
        )))
        .unwrap();
        assert!(out.contains("optimizer's plan"));
    }

    #[test]
    fn sample_command_reports_distribution() {
        let out = run(&cli(Command::Sample(
            200,
            "SELECT * FROM supplier s, nation n, region r \
             WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey"
                .into(),
        )))
        .unwrap();
        assert!(out.contains("within 2x"));
        assert!(out.contains('#'));
    }

    #[test]
    fn validate_command_passes() {
        let out = run(&cli(Command::Validate(25, TWO_WAY.into()))).unwrap();
        assert!(out.contains("all agree"), "{out}");
    }

    #[test]
    fn enumerate_command_lists_plans() {
        let out = run(&cli(Command::Enumerate(5, TWO_WAY.into()))).unwrap();
        assert_eq!(out.lines().count(), 6); // header + 5 plans
        assert!(out.contains("cost"));
    }

    #[test]
    fn rank_command_inverts_enumerate_output() {
        // Take plan 3 from `enumerate`'s listing and feed its preorder
        // ids back through `rank`: the round trip must agree.
        let listing = run(&cli(Command::Enumerate(5, TWO_WAY.into()))).unwrap();
        let line = listing.lines().nth(4).unwrap(); // rank 3
        let ids: Vec<&str> = line
            .split_whitespace()
            .filter(|w| w.contains('[')) // "HashJoin[2.1]" tokens
            .map(|w| {
                let open = w.find('[').unwrap();
                &w[open + 1..w.len() - 1]
            })
            .collect();
        let out = run(&cli(Command::Rank(ids.join(" "), TWO_WAY.into()))).unwrap();
        assert!(out.contains("whole-space rank 3 of"), "{out}");
        assert!(out.contains("OPTION (USEPLAN 3)"), "{out}");
    }

    #[test]
    fn rank_command_rejects_malformed_plans() {
        for (plan, msg) in [
            ("", "empty plan"),
            ("zebra", "missing `.` separator"),
            ("9999.1", "unknown group"),
            ("0.9999", "unknown expression"),
            ("2.1", "ends early"),
            ("0.1 0.1 0.1 0.1 0.1 0.1", "trailing"),
        ] {
            let err = run(&cli(Command::Rank(plan.into(), TWO_WAY.into()))).unwrap_err();
            assert!(
                err.to_string().contains(msg),
                "`{plan}` should fail with `{msg}`, got: {err}"
            );
        }
    }

    #[test]
    fn memo_command_dumps_structure() {
        let out = run(&cli(Command::Memo(TWO_WAY.into()))).unwrap();
        assert!(out.contains("Group 0"));
        assert!(out.contains("(root)"));
        assert!(out.contains("HashJoin"));
    }

    #[test]
    fn sql_errors_are_rendered_with_carets() {
        let err = run(&cli(Command::Count("SELECT * FROM bogus".into()))).unwrap_err();
        assert!(err.to_string().contains('^'));
    }

    #[test]
    fn run_errors_chain_to_the_failing_layer() {
        use std::error::Error as _;
        // USEPLAN far outside the space: CliError → SpaceError chain.
        let err = run(&cli(Command::Run(format!(
            "{TWO_WAY} OPTION (USEPLAN 99999999)"
        ))))
        .unwrap_err();
        let source = err.source().expect("layer error attached");
        assert!(source.to_string().contains("outside the plan space"));
    }
}
