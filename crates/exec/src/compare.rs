//! Result rendering for reports and examples.

use crate::Table;
use std::fmt::Write as _;

/// Renders a table as aligned text (at most `max_rows` rows, with a
/// truncation marker). Rows are shown in canonical sorted order so two
/// multiset-equal tables render identically.
pub fn render_table(table: &Table, max_rows: usize) -> String {
    let rows = table.sorted_rows();
    let shown = rows.len().min(max_rows);
    let mut cells: Vec<Vec<String>> = rows[..shown]
        .iter()
        .map(|r| r.iter().map(|d| d.to_string()).collect())
        .collect();
    let widths: Vec<usize> = (0..table.width())
        .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(1))
        .collect();
    let mut out = String::new();
    for row in &mut cells {
        for (c, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", cell, width = widths[c]);
        }
        out.pop();
        out.pop();
        out.push('\n');
    }
    if rows.len() > shown {
        let _ = writeln!(out, "… {} more rows", rows.len() - shown);
    }
    let _ = writeln!(out, "({} rows)", rows.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::Datum::Int;

    #[test]
    fn renders_sorted_and_aligned() {
        let t = Table::from_rows(2, vec![vec![Int(100), Int(2)], vec![Int(3), Int(40)]]).unwrap();
        let s = render_table(&t, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "  3  40");
        assert_eq!(lines[1], "100   2");
        assert_eq!(lines[2], "(2 rows)");
    }

    #[test]
    fn truncates_long_tables() {
        let rows = (0..20).map(|i| vec![Int(i)]).collect();
        let t = Table::from_rows(1, rows).unwrap();
        let s = render_table(&t, 5);
        assert!(s.contains("… 15 more rows"));
        assert!(s.contains("(20 rows)"));
    }

    #[test]
    fn empty_table_renders_count() {
        let t = Table::new(3);
        assert_eq!(render_table(&t, 5), "(0 rows)\n");
    }
}
