//! Experiment E8 (ablation) — uniform unranking-based sampling vs the
//! naive random walk.
//!
//! The obvious way to "sample a plan" without the paper's counting
//! machinery is a top-down walk picking uniformly among alternatives at
//! every step. This binary makes the bias measurable: on a small query
//! whose space can be enumerated, it draws 100 000 plans with both
//! samplers and reports each one's chi-square uniformity test plus the
//! most over/under-sampled plans under the naive walk.
//!
//! ```text
//! cargo run --release -p plansample-bench --bin ablation_naive
//! ```

use plansample_bench::prepare;
use plansample_query::QueryBuilder;
use plansample_stats::chi_square_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DRAWS: usize = 100_000;

fn main() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    // nation ⋈ region ⋈ supplier: small enough to enumerate exactly.
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.rel("supplier", Some("s")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
    let query = qb.build().unwrap();

    let prepared = prepare(&catalog, "3-way", query, false);
    let space = prepared.space();
    let n = space
        .total()
        .to_u64()
        .expect("3-way space fits comfortably in u64") as usize;
    println!("3-way join space: {n} plans; drawing {DRAWS} samples per sampler");

    let mut uniform_freq = vec![0usize; n];
    let mut naive_freq = vec![0usize; n];
    let mut rng = StdRng::seed_from_u64(plansample_bench::EXPERIMENT_SEED);
    for _ in 0..DRAWS {
        let plan = space.sample(&mut rng);
        let rank = space.rank(&plan).unwrap().to_u64().unwrap() as usize;
        uniform_freq[rank] += 1;

        let plan = space.sample_naive_walk(&mut rng).expect("complete space");
        let rank = space.rank(&plan).unwrap().to_u64().unwrap() as usize;
        naive_freq[rank] += 1;
    }

    let t_uniform = chi_square_uniform(&uniform_freq).expect("non-degenerate table");
    let t_naive = chi_square_uniform(&naive_freq).expect("non-degenerate table");
    println!();
    println!(
        "unranking sampler: chi2 = {:>10.1} (dof {}), p = {:.4}, w = {:.3}  -> {}",
        t_uniform.statistic,
        t_uniform.dof().unwrap(),
        t_uniform.p_value,
        t_uniform.effect_size(),
        verdict(t_uniform.p_value)
    );
    println!(
        "naive random walk: chi2 = {:>10.1} (dof {}), p = {:.4}, w = {:.3}  -> {}",
        t_naive.statistic,
        t_naive.dof().unwrap(),
        t_naive.p_value,
        t_naive.effect_size(),
        verdict(t_naive.p_value)
    );
    println!(
        "  (w is Cohen's effect size √(χ²/n); the 0.1%-level rejection threshold is χ² > {:.0})",
        t_naive.critical_value(0.001)
    );

    // Most distorted plans under the naive walk.
    let expected = DRAWS as f64 / n as f64;
    let mut ratios: Vec<(usize, f64)> = naive_freq
        .iter()
        .enumerate()
        .map(|(rank, &c)| (rank, c as f64 / expected))
        .collect();
    ratios.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!();
    println!("naive walk sampling ratio (1.0 = fair):");
    for &(rank, ratio) in ratios.iter().take(3) {
        println!("  plan {rank:>4}: {ratio:>6.2}x over-sampled");
    }
    for &(rank, ratio) in ratios.iter().rev().take(3).rev() {
        println!(
            "  plan {rank:>4}: {ratio:>6.2}x ({}under-sampled)",
            if ratio < 1.0 { "" } else { "not " }
        );
    }
    println!();
    println!(
        "unbiased testing needs the counting machinery: per-step uniform choices weight \
         a plan by the product of its local branching factors, not by 1/N."
    );
}

fn verdict(p: f64) -> &'static str {
    if p < 0.001 {
        "REJECTS uniformity"
    } else {
        "consistent with uniform"
    }
}
