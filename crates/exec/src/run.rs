//! Operator execution.
//!
//! Each node materializes its full output ([`ExecNode::execute`]).
//! Operators with physical-property obligations (`MergeJoin`,
//! `StreamAgg`) trust their inputs — they do not verify or repair
//! sortedness. Running an invalid plan therefore produces observable
//! wrong answers instead of errors, which is the behaviour the
//! differential-testing methodology requires.

use crate::node::{AggSpec, ExecNode, JoinSpec};
use crate::{Database, ExecError, Row, Table};
use plansample_catalog::Datum;
use plansample_query::AggFunc;
use std::collections::HashMap;

impl ExecNode {
    /// Executes the plan against `db`, producing the result table.
    pub fn execute(&self, db: &Database) -> Result<Table, ExecError> {
        match self {
            ExecNode::TableScan { table, filters } => {
                let src = db.table(*table)?;
                check_offsets(filters.iter().map(|f| f.offset), src.width())?;
                let rows: Vec<Row> = src
                    .rows()
                    .iter()
                    .filter(|r| filters.iter().all(|f| f.matches(r)))
                    .cloned()
                    .collect();
                Table::from_rows(src.width(), rows)
            }
            ExecNode::IndexScan {
                table,
                sort_col,
                filters,
            } => {
                let src = db.table(*table)?;
                check_offsets(
                    filters.iter().map(|f| f.offset).chain([*sort_col]),
                    src.width(),
                )?;
                let mut rows: Vec<Row> = src
                    .rows()
                    .iter()
                    .filter(|r| filters.iter().all(|f| f.matches(r)))
                    .cloned()
                    .collect();
                // Key order first, full row as tiebreak for determinism.
                rows.sort_by(|a, b| a[*sort_col].cmp(&b[*sort_col]).then_with(|| a.cmp(b)));
                Table::from_rows(src.width(), rows)
            }
            ExecNode::Sort { input, keys } => {
                let src = input.execute(db)?;
                check_offsets(keys.iter().copied(), src.width())?;
                let width = src.width();
                let mut rows = src.into_rows();
                rows.sort_by(|a, b| {
                    keys.iter()
                        .map(|&k| a[k].cmp(&b[k]))
                        .find(|o| *o != std::cmp::Ordering::Equal)
                        .unwrap_or_else(|| a.cmp(b))
                });
                Table::from_rows(width, rows)
            }
            ExecNode::NestedLoopJoin { left, right, spec } => {
                let l = left.execute(db)?;
                let r = right.execute(db)?;
                check_join_offsets(spec, l.width(), r.width())?;
                let mut out = Vec::new();
                for lrow in l.rows() {
                    for rrow in r.rows() {
                        if spec.pairs_match(lrow, rrow) {
                            out.push(spec.assemble_row(lrow, rrow));
                        }
                    }
                }
                Table::from_rows(l.width() + r.width(), out)
            }
            ExecNode::HashJoin { left, right, spec } => {
                let l = left.execute(db)?;
                let r = right.execute(db)?;
                check_join_offsets(spec, l.width(), r.width())?;
                let mut build: HashMap<Vec<Datum>, Vec<&Row>> = HashMap::new();
                for lrow in l.rows() {
                    let key: Vec<Datum> = spec
                        .eq_pairs
                        .iter()
                        .map(|&(lo, _)| lrow[lo].clone())
                        .collect();
                    build.entry(key).or_default().push(lrow);
                }
                let mut out = Vec::new();
                for rrow in r.rows() {
                    let key: Vec<Datum> = spec
                        .eq_pairs
                        .iter()
                        .map(|&(_, ro)| rrow[ro].clone())
                        .collect();
                    if let Some(matches) = build.get(&key) {
                        for lrow in matches {
                            out.push(spec.assemble_row(lrow, rrow));
                        }
                    }
                }
                Table::from_rows(l.width() + r.width(), out)
            }
            ExecNode::MergeJoin {
                left,
                right,
                left_key,
                right_key,
                spec,
            } => {
                let l = left.execute(db)?;
                let r = right.execute(db)?;
                check_join_offsets(spec, l.width(), r.width())?;
                check_offsets([*left_key], l.width())?;
                check_offsets([*right_key], r.width())?;
                let (lrows, rrows) = (l.rows(), r.rows());
                let mut out = Vec::new();
                let (mut i, mut j) = (0usize, 0usize);
                while i < lrows.len() && j < rrows.len() {
                    match lrows[i][*left_key].cmp(&rrows[j][*right_key]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            // Duplicate blocks: all pairs of the two runs.
                            let key = lrows[i][*left_key].clone();
                            let i_end = run_end(lrows, i, *left_key, &key);
                            let j_end = run_end(rrows, j, *right_key, &key);
                            for lrow in &lrows[i..i_end] {
                                for rrow in &rrows[j..j_end] {
                                    if spec.pairs_match(lrow, rrow) {
                                        out.push(spec.assemble_row(lrow, rrow));
                                    }
                                }
                            }
                            i = i_end;
                            j = j_end;
                        }
                    }
                }
                Table::from_rows(l.width() + r.width(), out)
            }
            ExecNode::HashAgg { input, group, aggs } => {
                let src = input.execute(db)?;
                check_offsets(group.iter().copied(), src.width())?;
                check_offsets(aggs.iter().filter_map(|a| a.arg), src.width())?;
                let mut groups: HashMap<Vec<Datum>, Accumulators> = HashMap::new();
                for row in src.rows() {
                    let key: Vec<Datum> = group.iter().map(|&g| row[g].clone()).collect();
                    groups
                        .entry(key)
                        .or_insert_with(|| Accumulators::new(aggs))
                        .update(row, aggs)?;
                }
                finalize_groups(groups, group.len(), aggs, src.len())
            }
            ExecNode::StreamAgg { input, group, aggs } => {
                let src = input.execute(db)?;
                check_offsets(group.iter().copied(), src.width())?;
                check_offsets(aggs.iter().filter_map(|a| a.arg), src.width())?;
                let width = group.len() + aggs.len();
                let mut out = Vec::new();
                let mut current: Option<(Vec<Datum>, Accumulators)> = None;
                for row in src.rows() {
                    let key: Vec<Datum> = group.iter().map(|&g| row[g].clone()).collect();
                    let start_new = match &current {
                        Some((k, _)) => *k != key,
                        None => true,
                    };
                    if start_new {
                        if let Some((k, accs)) = current.take() {
                            out.push(accs.finish_into(k));
                        }
                        current = Some((key, Accumulators::new(aggs)));
                    }
                    let (_, accs) = current.as_mut().expect("just installed");
                    accs.update(row, aggs)?;
                }
                if let Some((k, accs)) = current.take() {
                    out.push(accs.finish_into(k));
                }
                // Scalar aggregate over an empty input: one row of empty
                // accumulators (SQL semantics), matching HashAgg.
                if out.is_empty() && group.is_empty() {
                    out.push(Accumulators::new(aggs).finish_into(Vec::new()));
                }
                Table::from_rows(width, out)
            }
            ExecNode::Project { input, cols } => {
                let src = input.execute(db)?;
                check_offsets(cols.iter().copied(), src.width())?;
                let rows: Vec<Row> = src
                    .rows()
                    .iter()
                    .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                    .collect();
                Table::from_rows(cols.len(), rows)
            }
        }
    }
}

fn run_end(rows: &[Row], start: usize, key_col: usize, key: &Datum) -> usize {
    let mut end = start;
    while end < rows.len() && &rows[end][key_col] == key {
        end += 1;
    }
    end
}

fn check_offsets<I: IntoIterator<Item = usize>>(offsets: I, width: usize) -> Result<(), ExecError> {
    for offset in offsets {
        if offset >= width {
            return Err(ExecError::OffsetOutOfRange { offset, width });
        }
    }
    Ok(())
}

fn check_join_offsets(spec: &JoinSpec, lw: usize, rw: usize) -> Result<(), ExecError> {
    check_offsets(spec.eq_pairs.iter().map(|&(l, _)| l), lw)?;
    check_offsets(spec.eq_pairs.iter().map(|&(_, r)| r), rw)?;
    for &(side, offset, len) in &spec.assemble {
        let width = match side {
            crate::Side::Left => lw,
            crate::Side::Right => rw,
        };
        if len > 0 {
            check_offsets([offset + len - 1], width)?;
        }
    }
    Ok(())
}

fn finalize_groups(
    groups: HashMap<Vec<Datum>, Accumulators>,
    group_width: usize,
    aggs: &[AggSpec],
    input_rows: usize,
) -> Result<Table, ExecError> {
    let width = group_width + aggs.len();
    let mut out: Vec<Row> = groups
        .into_iter()
        .map(|(k, accs)| accs.finish_into(k))
        .collect();
    // Scalar aggregate over empty input: one all-empty row.
    if out.is_empty() && group_width == 0 && input_rows == 0 {
        out.push(Accumulators::new(aggs).finish_into(Vec::new()));
    }
    Table::from_rows(width, out)
}

/// A bank of aggregate accumulators, one per [`AggSpec`], shared by the
/// materialized and pipelined engines so both produce bit-identical
/// aggregate results.
#[derive(Debug, Clone)]
pub(crate) struct Accumulators(Vec<Acc>);

impl Accumulators {
    /// Fresh accumulators for the given aggregate list.
    pub(crate) fn new(aggs: &[AggSpec]) -> Self {
        Accumulators(aggs.iter().map(Acc::new).collect())
    }

    /// Folds one input row into every accumulator.
    pub(crate) fn update(&mut self, row: &[Datum], aggs: &[AggSpec]) -> Result<(), ExecError> {
        for (acc, spec) in self.0.iter_mut().zip(aggs) {
            acc.update(row, spec)?;
        }
        Ok(())
    }

    /// Finalizes into an output row `key ++ aggregate values`.
    pub(crate) fn finish_into(self, mut key: Vec<Datum>) -> Row {
        key.extend(self.0.into_iter().map(Acc::finish));
        key
    }
}

/// Aggregate accumulator. Integer sums stay exact integers so results
/// are bitwise identical across join orders — a prerequisite for exact
/// differential comparison (floats would accumulate in plan-dependent
/// order).
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum(SumState),
    Min(Option<Datum>),
    Max(Option<Datum>),
    Avg(SumState, i64),
}

#[derive(Debug, Clone, Copy)]
enum SumState {
    Empty,
    Int(i64),
    Float(f64),
}

impl SumState {
    fn add(&mut self, v: &Datum, func: &'static str) -> Result<(), ExecError> {
        let next = match (&self, v) {
            (SumState::Empty, Datum::Int(x)) => SumState::Int(*x),
            (SumState::Empty, Datum::Float(x)) => SumState::Float(*x),
            (SumState::Int(acc), Datum::Int(x)) => SumState::Int(acc + x),
            (SumState::Int(acc), Datum::Float(x)) => SumState::Float(*acc as f64 + x),
            (SumState::Float(acc), Datum::Int(x)) => SumState::Float(acc + *x as f64),
            (SumState::Float(acc), Datum::Float(x)) => SumState::Float(acc + x),
            (_, Datum::Null) => return Ok(()), // SQL: NULLs ignored
            (_, other) => {
                return Err(ExecError::BadAggregateInput {
                    func,
                    value: other.to_string(),
                })
            }
        };
        *self = next;
        Ok(())
    }

    fn finish(self) -> Datum {
        match self {
            SumState::Empty => Datum::Null,
            SumState::Int(v) => Datum::Int(v),
            SumState::Float(v) => Datum::Float(v),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            SumState::Empty => None,
            SumState::Int(v) => Some(*v as f64),
            SumState::Float(v) => Some(*v),
        }
    }
}

impl Acc {
    fn new(spec: &AggSpec) -> Acc {
        match spec.func {
            AggFunc::CountStar => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(SumState::Empty),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg(SumState::Empty, 0),
        }
    }

    fn update(&mut self, row: &[Datum], spec: &AggSpec) -> Result<(), ExecError> {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(state) => {
                let v = &row[spec.arg.expect("SUM has an argument")];
                state.add(v, "SUM")?;
            }
            Acc::Avg(state, n) => {
                let v = &row[spec.arg.expect("AVG has an argument")];
                if !matches!(v, Datum::Null) {
                    state.add(v, "AVG")?;
                    *n += 1;
                }
            }
            Acc::Min(cur) => {
                let v = &row[spec.arg.expect("MIN has an argument")];
                if !matches!(v, Datum::Null) && cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                let v = &row[spec.arg.expect("MAX has an argument")];
                if !matches!(v, Datum::Null) && cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Datum {
        match self {
            Acc::Count(n) => Datum::Int(n),
            Acc::Sum(state) => state.finish(),
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Datum::Null),
            Acc::Avg(state, n) => match (state.as_f64(), n) {
                (_, 0) | (None, _) => Datum::Null,
                (Some(sum), n) => Datum::Float(sum / n as f64),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{ColFilter, Side};
    use plansample_catalog::Datum::{Float, Int, Null, Str};
    use plansample_catalog::TableId;
    use plansample_query::CmpOp;

    fn db_one(width: usize, rows: Vec<Row>) -> Database {
        let mut db = Database::new();
        db.insert(TableId(0), Table::from_rows(width, rows).unwrap());
        db
    }

    fn db_two(w0: usize, r0: Vec<Row>, w1: usize, r1: Vec<Row>) -> Database {
        let mut db = Database::new();
        db.insert(TableId(0), Table::from_rows(w0, r0).unwrap());
        db.insert(TableId(1), Table::from_rows(w1, r1).unwrap());
        db
    }

    fn scan(t: u32) -> Box<ExecNode> {
        Box::new(ExecNode::TableScan {
            table: TableId(t),
            filters: vec![],
        })
    }

    fn simple_spec(lw: usize, rw: usize, pairs: Vec<(usize, usize)>) -> JoinSpec {
        JoinSpec {
            eq_pairs: pairs,
            assemble: vec![(Side::Left, 0, lw), (Side::Right, 0, rw)],
        }
    }

    #[test]
    fn table_scan_filters() {
        let db = db_one(
            2,
            vec![
                vec![Int(1), Int(10)],
                vec![Int(2), Int(20)],
                vec![Int(3), Int(30)],
            ],
        );
        let node = ExecNode::TableScan {
            table: TableId(0),
            filters: vec![ColFilter {
                offset: 1,
                op: CmpOp::Gt,
                value: Int(15),
            }],
        };
        let out = node.execute(&db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.rows().iter().all(|r| r[1] > Int(15)));
    }

    #[test]
    fn index_scan_sorts() {
        let db = db_one(1, vec![vec![Int(3)], vec![Int(1)], vec![Int(2)]]);
        let node = ExecNode::IndexScan {
            table: TableId(0),
            sort_col: 0,
            filters: vec![],
        };
        let out = node.execute(&db).unwrap();
        assert_eq!(out.rows(), &[vec![Int(1)], vec![Int(2)], vec![Int(3)]]);
    }

    #[test]
    fn sort_is_lexicographic() {
        let db = db_one(
            2,
            vec![
                vec![Int(2), Int(1)],
                vec![Int(1), Int(2)],
                vec![Int(1), Int(1)],
            ],
        );
        let node = ExecNode::Sort {
            input: scan(0),
            keys: vec![0, 1],
        };
        let out = node.execute(&db).unwrap();
        assert_eq!(
            out.rows(),
            &[
                vec![Int(1), Int(1)],
                vec![Int(1), Int(2)],
                vec![Int(2), Int(1)]
            ]
        );
    }

    #[test]
    fn nlj_and_hash_join_agree() {
        let db = db_two(
            1,
            vec![vec![Int(1)], vec![Int(2)], vec![Int(2)]],
            2,
            vec![
                vec![Int(2), Int(20)],
                vec![Int(3), Int(30)],
                vec![Int(2), Int(21)],
            ],
        );
        let spec = simple_spec(1, 2, vec![(0, 0)]);
        let nlj = ExecNode::NestedLoopJoin {
            left: scan(0),
            right: scan(1),
            spec: spec.clone(),
        };
        let hj = ExecNode::HashJoin {
            left: scan(0),
            right: scan(1),
            spec,
        };
        let a = nlj.execute(&db).unwrap();
        let b = hj.execute(&db).unwrap();
        assert_eq!(a.len(), 4); // 2 left dups × 2 right dups
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn merge_join_handles_duplicate_blocks() {
        let db = db_two(
            1,
            vec![vec![Int(1)], vec![Int(2)], vec![Int(2)], vec![Int(3)]],
            1,
            vec![vec![Int(2)], vec![Int(2)], vec![Int(4)]],
        );
        let spec = simple_spec(1, 1, vec![(0, 0)]);
        let mj = ExecNode::MergeJoin {
            left: Box::new(ExecNode::Sort {
                input: scan(0),
                keys: vec![0],
            }),
            right: Box::new(ExecNode::Sort {
                input: scan(1),
                keys: vec![0],
            }),
            left_key: 0,
            right_key: 0,
            spec: spec.clone(),
        };
        let nlj = ExecNode::NestedLoopJoin {
            left: scan(0),
            right: scan(1),
            spec,
        };
        let a = mj.execute(&db).unwrap();
        assert_eq!(a.len(), 4); // 2×2 block
        assert!(a.multiset_eq(&nlj.execute(&db).unwrap()));
    }

    #[test]
    fn merge_join_trusts_sortedness() {
        // Unsorted inputs: the merge join silently produces a wrong
        // (incomplete) result — by design.
        let db = db_two(
            1,
            vec![vec![Int(3)], vec![Int(1)]],
            1,
            vec![vec![Int(1)], vec![Int(3)]],
        );
        let spec = simple_spec(1, 1, vec![(0, 0)]);
        let mj = ExecNode::MergeJoin {
            left: scan(0),
            right: scan(1),
            left_key: 0,
            right_key: 0,
            spec,
        };
        let out = mj.execute(&db).unwrap();
        assert!(
            out.len() < 2,
            "bad plan must corrupt the result, got {}",
            out.len()
        );
    }

    #[test]
    fn cross_product_via_nlj() {
        let db = db_two(
            1,
            vec![vec![Int(1)], vec![Int(2)]],
            1,
            vec![vec![Int(10)], vec![Int(20)]],
        );
        let nlj = ExecNode::NestedLoopJoin {
            left: scan(0),
            right: scan(1),
            spec: simple_spec(1, 1, vec![]),
        };
        assert_eq!(nlj.execute(&db).unwrap().len(), 4);
    }

    #[test]
    fn residual_predicates_in_merge_join() {
        // Two eq predicates; merge on the first, residual on the second.
        let db = db_two(
            2,
            vec![vec![Int(1), Int(7)], vec![Int(1), Int(8)]],
            2,
            vec![vec![Int(1), Int(7)], vec![Int(1), Int(9)]],
        );
        let spec = simple_spec(2, 2, vec![(0, 0), (1, 1)]);
        let mj = ExecNode::MergeJoin {
            left: Box::new(ExecNode::Sort {
                input: scan(0),
                keys: vec![0],
            }),
            right: Box::new(ExecNode::Sort {
                input: scan(1),
                keys: vec![0],
            }),
            left_key: 0,
            right_key: 0,
            spec,
        };
        let out = mj.execute(&db).unwrap();
        assert_eq!(out.len(), 1); // only the (1,7)-(1,7) pair
    }

    #[test]
    fn hash_agg_groups_and_aggregates() {
        let db = db_one(
            2,
            vec![
                vec![Int(1), Int(10)],
                vec![Int(2), Int(5)],
                vec![Int(1), Int(30)],
            ],
        );
        let agg = ExecNode::HashAgg {
            input: scan(0),
            group: vec![0],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(1),
                },
                AggSpec {
                    func: AggFunc::CountStar,
                    arg: None,
                },
                AggSpec {
                    func: AggFunc::Min,
                    arg: Some(1),
                },
                AggSpec {
                    func: AggFunc::Max,
                    arg: Some(1),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    arg: Some(1),
                },
            ],
        };
        let out = agg.execute(&db).unwrap();
        let rows = out.sorted_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            vec![Int(1), Int(40), Int(2), Int(10), Int(30), Float(20.0)]
        );
        assert_eq!(
            rows[1],
            vec![Int(2), Int(5), Int(1), Int(5), Int(5), Float(5.0)]
        );
    }

    #[test]
    fn stream_agg_matches_hash_agg_on_sorted_input() {
        let db = db_one(
            2,
            vec![
                vec![Int(2), Int(1)],
                vec![Int(1), Int(2)],
                vec![Int(1), Int(3)],
                vec![Int(2), Int(9)],
            ],
        );
        let aggs = vec![AggSpec {
            func: AggFunc::Sum,
            arg: Some(1),
        }];
        let hash = ExecNode::HashAgg {
            input: scan(0),
            group: vec![0],
            aggs: aggs.clone(),
        };
        let stream = ExecNode::StreamAgg {
            input: Box::new(ExecNode::Sort {
                input: scan(0),
                keys: vec![0],
            }),
            group: vec![0],
            aggs,
        };
        assert!(hash
            .execute(&db)
            .unwrap()
            .multiset_eq(&stream.execute(&db).unwrap()));
    }

    #[test]
    fn stream_agg_on_unsorted_input_fragments_groups() {
        let db = db_one(
            2,
            vec![
                vec![Int(1), Int(1)],
                vec![Int(2), Int(1)],
                vec![Int(1), Int(1)],
            ],
        );
        let stream = ExecNode::StreamAgg {
            input: scan(0),
            group: vec![0],
            aggs: vec![AggSpec {
                func: AggFunc::CountStar,
                arg: None,
            }],
        };
        // group 1 appears twice (fragmented) -> 3 output rows, not 2.
        assert_eq!(stream.execute(&db).unwrap().len(), 3);
    }

    #[test]
    fn scalar_aggregate_over_empty_input() {
        let db = db_one(1, vec![]);
        for node in [
            ExecNode::HashAgg {
                input: scan(0),
                group: vec![],
                aggs: vec![
                    AggSpec {
                        func: AggFunc::CountStar,
                        arg: None,
                    },
                    AggSpec {
                        func: AggFunc::Sum,
                        arg: Some(0),
                    },
                ],
            },
            ExecNode::StreamAgg {
                input: scan(0),
                group: vec![],
                aggs: vec![
                    AggSpec {
                        func: AggFunc::CountStar,
                        arg: None,
                    },
                    AggSpec {
                        func: AggFunc::Sum,
                        arg: Some(0),
                    },
                ],
            },
        ] {
            let out = node.execute(&db).unwrap();
            assert_eq!(out.rows(), &[vec![Int(0), Null]]);
        }
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let db = db_one(1, vec![]);
        let agg = ExecNode::HashAgg {
            input: scan(0),
            group: vec![0],
            aggs: vec![AggSpec {
                func: AggFunc::CountStar,
                arg: None,
            }],
        };
        assert!(agg.execute(&db).unwrap().is_empty());
    }

    #[test]
    fn sum_over_strings_errors() {
        let db = db_one(1, vec![vec![Str("x".into())]]);
        let agg = ExecNode::HashAgg {
            input: scan(0),
            group: vec![],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(0),
            }],
        };
        assert!(matches!(
            agg.execute(&db),
            Err(ExecError::BadAggregateInput { func: "SUM", .. })
        ));
    }

    #[test]
    fn aggregates_skip_nulls() {
        let db = db_one(1, vec![vec![Int(5)], vec![Null], vec![Int(3)]]);
        let agg = ExecNode::HashAgg {
            input: scan(0),
            group: vec![],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(0),
                },
                AggSpec {
                    func: AggFunc::Min,
                    arg: Some(0),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    arg: Some(0),
                },
            ],
        };
        let out = agg.execute(&db).unwrap();
        assert_eq!(out.rows()[0], vec![Int(8), Int(3), Float(4.0)]);
    }

    #[test]
    fn project_selects_columns() {
        let db = db_one(3, vec![vec![Int(1), Int(2), Int(3)]]);
        let p = ExecNode::Project {
            input: scan(0),
            cols: vec![2, 0],
        };
        let out = p.execute(&db).unwrap();
        assert_eq!(out.rows(), &[vec![Int(3), Int(1)]]);
    }

    #[test]
    fn offsets_validated() {
        let db = db_one(1, vec![vec![Int(1)]]);
        let p = ExecNode::Project {
            input: scan(0),
            cols: vec![5],
        };
        assert!(matches!(
            p.execute(&db),
            Err(ExecError::OffsetOutOfRange {
                offset: 5,
                width: 1
            })
        ));
    }

    #[test]
    fn mixed_int_float_sum_widens() {
        let db = db_one(1, vec![vec![Int(1)], vec![Float(0.5)]]);
        let agg = ExecNode::HashAgg {
            input: scan(0),
            group: vec![],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(0),
            }],
        };
        assert_eq!(agg.execute(&db).unwrap().rows()[0], vec![Float(1.5)]);
    }
}
