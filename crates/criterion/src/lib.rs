//! Workspace-internal stand-in for the subset of the crates.io `criterion`
//! bench API this repository uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! just enough of the criterion surface for the `crates/bench` suites:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`] with
//! [`Criterion::bench_function`] and [`Criterion::benchmark_group`], group
//! [`BenchmarkGroup::sample_size`], and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: after one warm-up call, each sample
//! times a single invocation of the routine, and the bench reports the
//! median, minimum, and maximum over the samples to stdout. There are no
//! HTML reports, statistical regressions, or plots. Passing `--test` (as
//! `cargo test --benches` does) runs every routine exactly once without
//! timing.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 50;

/// Collects and runs benchmarks; the stand-in for criterion's manager type.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a manager configured from the process arguments: `--test`
    /// switches to run-once mode, and the first free-standing argument is a
    /// substring filter on benchmark names.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                s if !s.starts_with('-') && c.filter.is_none() => {
                    c.filter = Some(s.to_string());
                }
                _ => {}
            }
        }
        c
    }

    /// Benchmarks `f` under `id` with the default sample size.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Starts a named group of benchmarks sharing a sample size.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Prints the trailing summary (a no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks; stand-in for criterion's `BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(criterion: &Criterion, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: if criterion.test_mode { 0 } else { sample_size },
        times: Vec::new(),
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("test {id} ... ok");
        return;
    }
    bencher.times.sort();
    match bencher.times.as_slice() {
        [] => println!("{id}: no measurements (Bencher::iter never called)"),
        times => println!(
            "{id}: median {:>12} (min {}, max {}, {} samples)",
            format_duration(times[times.len() / 2]),
            format_duration(times[0]),
            format_duration(times[times.len() - 1]),
            times.len(),
        ),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    match nanos {
        0..=9_999 => format!("{nanos} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", nanos as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", nanos as f64 / 1e6),
        _ => format!("{:.3} s", nanos as f64 / 1e9),
    }
}

/// Times one benchmark routine; stand-in for criterion's `Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs the routine once as warm-up, then `sample_size` timed times
    /// (or exactly once, untimed, in `--test` mode).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `fn main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
