//! `plansample-loadgen` — drive a plan server with a concurrent mixed
//! workload and write a latency/throughput report.
//!
//! Two modes:
//!
//! * `--inline` (default) starts a server in-process on a loopback
//!   port, runs the load against it, and shuts it down; or
//! * `--addr HOST:PORT` targets an already-running server
//!   (`plansample-cli serve`).
//!
//! `--validate FILE` instead checks an existing report against the
//! `BENCH_serving.json` schema and exits nonzero if it is malformed or
//! records protocol errors. `--prev FILE` additionally compares the
//! fresh run against a committed previous artifact and fails on a >30%
//! throughput regression at an equal reactor count (the CI
//! perf-trajectory check). `--scaling` runs the inline workload at 1
//! and 4 reactors and asserts >= 2x throughput on hosts with >= 4
//! cores (skipped with a message on smaller hosts).

use plansample_serve::loadgen::{self, LoadgenConfig};
use plansample_serve::server::{self, ServerConfig};
use std::net::SocketAddr;
use std::process::ExitCode;

const USAGE: &str = "\
plansample-loadgen: load-test a plan server

USAGE:
    plansample-loadgen [OPTIONS]
    plansample-loadgen --validate FILE
    plansample-loadgen --scaling [OPTIONS]

OPTIONS:
    --inline              start a server in-process (default when --addr absent)
    --addr HOST:PORT      target an already-running server
    --connections N       concurrent connections        [default: 100]
    --requests N          requests per connection       [default: 50]
    --seed S              workload seed                 [default: 42]
    --reactors N          inline server reactor threads (0 = one per core)
    --workers N           inline server worker threads per reactor [default: 4]
    --out FILE            write the JSON report here
    --prev FILE           compare against a previous report (perf trajectory);
                          fails on >30% throughput regression at equal reactors
    --scaling             run inline at 1 and 4 reactors and check >=2x
                          throughput (needs >=4 cores; skipped otherwise)
    --validate FILE       validate an existing report and exit
    --help                print this help
";

struct Args {
    addr: Option<SocketAddr>,
    config: LoadgenConfig,
    reactors: usize,
    workers: usize,
    out: Option<String>,
    prev: Option<String>,
    scaling: bool,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        config: LoadgenConfig::default(),
        reactors: 0,
        workers: 4,
        out: None,
        prev: None,
        scaling: false,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--inline" => args.addr = None,
            "--addr" => {
                let v = value("--addr")?;
                args.addr = Some(v.parse().map_err(|e| format!("bad --addr {v:?}: {e}"))?);
            }
            "--connections" => {
                let v = value("--connections")?;
                args.config.connections = v
                    .parse()
                    .map_err(|e| format!("bad --connections {v:?}: {e}"))?;
            }
            "--requests" => {
                let v = value("--requests")?;
                args.config.requests_per_connection = v
                    .parse()
                    .map_err(|e| format!("bad --requests {v:?}: {e}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                args.config.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
            }
            "--reactors" => {
                let v = value("--reactors")?;
                args.reactors = v
                    .parse()
                    .map_err(|e| format!("bad --reactors {v:?}: {e}"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                args.workers = v.parse().map_err(|e| format!("bad --workers {v:?}: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--prev" => args.prev = Some(value("--prev")?),
            "--scaling" => args.scaling = true,
            "--validate" => args.validate = Some(value("--validate")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.config.connections == 0 || args.config.requests_per_connection == 0 {
        return Err("--connections and --requests must be positive".into());
    }
    if args.scaling && args.addr.is_some() {
        return Err("--scaling starts its own inline servers; drop --addr".into());
    }
    Ok(args)
}

fn inline_server(reactors: usize, workers: usize) -> Result<server::ServerHandle, ExitCode> {
    server::start(ServerConfig {
        reactors,
        workers,
        ..ServerConfig::default()
    })
    .map_err(|e| {
        eprintln!("plansample-loadgen: failed to start inline server: {e}");
        ExitCode::FAILURE
    })
}

/// `--scaling`: the multi-core acceptance check. Runs the same workload
/// at 1 and 4 reactors; on a >=4-core host the 4-reactor run must
/// sustain >= 2x the single-reactor throughput with zero protocol
/// errors. On smaller hosts the assertion is skipped (with a message),
/// because the reactors would just time-slice the same cores.
fn run_scaling(args: &Args) -> ExitCode {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut throughput = Vec::new();
    for reactors in [1usize, 4] {
        let handle = match inline_server(reactors, args.workers) {
            Ok(handle) => handle,
            Err(code) => return code,
        };
        let report = loadgen::run(handle.addr(), &args.config);
        handle.stop();
        if report.protocol_errors > 0 {
            eprintln!(
                "scaling: run at {reactors} reactors recorded {} protocol errors",
                report.protocol_errors
            );
            return ExitCode::FAILURE;
        }
        println!(
            "scaling: {reactors} reactors -> {:.0} req/s ({} replies in {:.3}s)",
            report.throughput(),
            report.replies(),
            report.elapsed.as_secs_f64()
        );
        throughput.push(report.throughput());
    }
    if cores < 4 {
        println!(
            "scaling: SKIPPED the >=2x assertion — host has {cores} core(s), \
             4 reactors cannot scale past the hardware"
        );
        return ExitCode::SUCCESS;
    }
    let (single, quad) = (throughput[0], throughput[1]);
    if quad < single * 2.0 {
        eprintln!(
            "scaling: FAILED — 4 reactors sustained {quad:.0} req/s, \
             less than 2x the single-reactor {single:.0} req/s"
        );
        return ExitCode::FAILURE;
    }
    println!("scaling: OK — {quad:.0} req/s at 4 reactors vs {single:.0} at 1");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("plansample-loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.validate {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("plansample-loadgen: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match loadgen::validate_report(&text) {
            Ok(()) => {
                println!("{path}: valid serving report");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.scaling {
        return run_scaling(&args);
    }

    // The previous artifact is read *before* the run so `--out` over
    // the same path (the CI pattern) cannot clobber the baseline first.
    let prev = match &args.prev {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("plansample-loadgen: cannot read previous report {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Resolve the target: an external server, or an inline one.
    let mut inline = None;
    let addr = match args.addr {
        Some(addr) => addr,
        None => {
            let handle = match inline_server(args.reactors, args.workers) {
                Ok(handle) => handle,
                Err(code) => return code,
            };
            let addr = handle.addr();
            inline = Some(handle);
            addr
        }
    };

    eprintln!(
        "driving {} connections x {} requests against {addr} (seed {})",
        args.config.connections, args.config.requests_per_connection, args.config.seed
    );
    let report = loadgen::run(addr, &args.config);
    if let Some(handle) = inline {
        handle.stop();
    }

    println!(
        "requests {}  ok {}  overloaded {}  app_errors {}  protocol_errors {}",
        report.sent, report.ok, report.overloaded, report.app_errors, report.protocol_errors
    );
    println!(
        "elapsed {:.3}s  throughput {:.0} req/s  reactors {}",
        report.elapsed.as_secs_f64(),
        report.throughput(),
        report.reactors
    );
    println!(
        "latency us  p50 {}  p90 {}  p99 {}  p999 {}  max {}",
        report.latency_us(0.50),
        report.latency_us(0.90),
        report.latency_us(0.99),
        report.latency_us(0.999),
        report.latencies_us.last().copied().unwrap_or(0),
    );
    if let Some(s) = &report.server {
        println!(
            "server      hits {}  misses {}  coalesced {}  shed_queue {}  shed_prepare {}  wire_errors {}",
            s.hits, s.misses, s.coalesced, s.shed_queue, s.shed_prepare, s.wire_errors
        );
        for (i, r) in s.per_reactor.iter().enumerate() {
            println!(
                "reactor {i}   requests {}  connections {}",
                r.requests, r.connections
            );
        }
    }

    let json = loadgen::report_json(&report);
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("plansample-loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
    }

    if let Some(prev) = prev {
        match loadgen::compare_reports(&prev, &json) {
            Ok(verdict) => println!("trajectory: {verdict}"),
            Err(e) => {
                eprintln!("plansample-loadgen: trajectory check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if report.protocol_errors > 0 || report.app_errors > 0 {
        eprintln!("plansample-loadgen: run was not clean");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
