//! Property tests of the central bijection over *randomly generated
//! queries*: for any join graph the optimizer explores,
//! `unrank: [0, N) → plans` must be a bijection onto the set of valid
//! plans, with `rank` its inverse, and the exhaustive enumeration must
//! agree with the count.

use plansample::PlanSpace;
use plansample_bignum::Nat;
use plansample_catalog::{table, Catalog, ColType};
use plansample_memo::validate_plan;
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::{QueryBuilder, QuerySpec};
use proptest::prelude::*;

/// A random query shape: `n` relations (3..=4), random tree edges plus
/// optional extra edges (cycles), random row counts, random indexes.
#[derive(Debug, Clone)]
struct QueryShape {
    rows: Vec<u64>,
    indexed: Vec<bool>,
    /// edge i connects relation i+1 to `attach[i] <= i`.
    attach: Vec<usize>,
    extra_edge: Option<(usize, usize)>,
}

fn arb_shape() -> impl Strategy<Value = QueryShape> {
    (3usize..=4)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(10u64..100_000, n..=n),
                proptest::collection::vec(any::<bool>(), n..=n),
                // attach[i] in 0..=i ensures a connected tree
                (0..n - 1)
                    .map(|i| (0..=i).prop_map(move |a| a).boxed())
                    .collect::<Vec<_>>(),
                proptest::option::of((0usize..4, 0usize..4)),
            )
        })
        .prop_map(|(rows, indexed, attach, extra_edge)| QueryShape {
            rows,
            indexed,
            attach,
            extra_edge,
        })
}

fn build_query(shape: &QueryShape) -> (Catalog, QuerySpec) {
    let n = shape.rows.len();
    let mut catalog = Catalog::new();
    for i in 0..n {
        let mut b = table(&format!("t{i}"), shape.rows[i])
            .col("k", ColType::Int, shape.rows[i].min(500))
            .col("v", ColType::Int, 50);
        if shape.indexed[i] {
            b = b.index_on(0);
        }
        catalog.add_table(b.build()).unwrap();
    }
    let mut qb = QueryBuilder::new(&catalog);
    for i in 0..n {
        qb.rel(&format!("t{i}"), None).unwrap();
    }
    for (i, &a) in shape.attach.iter().enumerate() {
        qb.join((&format!("t{}", i + 1), "k"), (&format!("t{a}"), "k"))
            .unwrap();
    }
    if let Some((a, b)) = shape.extra_edge {
        let (a, b) = (a % n, b % n);
        if a != b {
            qb.join((&format!("t{a}"), "v"), (&format!("t{b}"), "v"))
                .unwrap();
        }
    }
    let q = qb.build().unwrap();
    (catalog, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rank_unrank_round_trips_on_random_queries(shape in arb_shape()) {
        let (catalog, query) = build_query(&shape);
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
        let space = PlanSpace::build(&optimized.memo, &query).unwrap();
        let total = space.total().clone();
        prop_assert!(!total.is_zero());

        // Probe ranks spread across the space (first, last, and strides).
        let n = total.to_u128().unwrap();
        let probes: Vec<u128> = (0..16).map(|i| i * (n - 1) / 15).collect();
        for &r in &probes {
            let rank = Nat::from(r);
            let plan = space.unrank(&rank).unwrap();
            prop_assert!(
                validate_plan(&optimized.memo, &query, &plan).is_empty(),
                "rank {r} produced an invalid plan"
            );
            prop_assert_eq!(space.rank(&plan).unwrap(), rank, "round trip at {}", r);
        }
    }

    #[test]
    fn enumeration_agrees_with_count_on_small_spaces(shape in arb_shape()) {
        let (catalog, query) = build_query(&shape);
        // Shrink the space: disable index scans and merge joins.
        let config = OptimizerConfig {
            enable_index_scans: false,
            enable_merge_joins: false,
            enable_enforcers: false,
            ..Default::default()
        };
        let optimized = optimize(&catalog, &query, &config).unwrap();
        let space = PlanSpace::build(&optimized.memo, &query).unwrap();
        let total = space.total().to_u64().unwrap();
        prop_assume!(total <= 20_000);

        let mut seen = std::collections::HashSet::new();
        let mut count = 0u64;
        for plan in space.enumerate() {
            prop_assert!(seen.insert(format!("{:?}", plan.preorder_ids())), "duplicate plan");
            count += 1;
        }
        prop_assert_eq!(count, total, "enumeration count mismatch");

        // Resumable cursors tile the same space: pages started at
        // arbitrary ranks must reproduce the skip-based prefix walk.
        for start in [0u64, 1, total / 2, total.saturating_sub(1), total] {
            let page: Vec<_> = space
                .enumerate_from(Nat::from(start))
                .take(8)
                .collect();
            let walked: Vec<_> = space.enumerate().skip(start as usize).take(8).collect();
            prop_assert_eq!(page, walked, "cursor at {} diverges from skip", start);
        }
    }

    #[test]
    fn sampled_plans_are_valid_and_rankable(shape in arb_shape()) {
        use rand::SeedableRng;
        let (catalog, query) = build_query(&shape);
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
        let space = PlanSpace::build(&optimized.memo, &query).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..32 {
            let plan = space.sample(&mut rng);
            prop_assert!(validate_plan(&optimized.memo, &query, &plan).is_empty());
            let rank = space.rank(&plan).unwrap();
            prop_assert!(&rank < space.total());
            prop_assert_eq!(&space.unrank(&rank).unwrap(), &plan);
        }
    }

    #[test]
    fn cross_product_spaces_round_trip_too(shape in arb_shape()) {
        let (catalog, query) = build_query(&shape);
        let optimized =
            optimize(&catalog, &query, &OptimizerConfig::with_cross_products()).unwrap();
        let space = PlanSpace::build(&optimized.memo, &query).unwrap();
        let n = space.total().to_u128().unwrap();
        for r in [0u128, n / 3, n / 2, n - 1] {
            let rank = Nat::from(r);
            let plan = space.unrank(&rank).unwrap();
            prop_assert_eq!(space.rank(&plan).unwrap(), rank);
        }
    }
}

#[test]
fn counts_rooted_sum_to_total_on_tpch() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q7(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let root = optimized.memo.group(optimized.memo.root());
    let sum: Nat = root
        .phys_iter()
        .map(|(id, _)| space.count_rooted(id).clone())
        .sum();
    assert_eq!(&sum, space.total());
}
