//! Concurrency smoke test for the network front end: a thundering herd
//! of client threads hammers one server over loopback with a shared
//! workload set, and every reply must be byte-for-byte identical to
//! what the in-process `PreparedQuery` API produces for the same
//! operation — the serving layer adds transport, not behavior. The
//! server-side cache counters then pin the singleflight property across
//! the network: one optimization per distinct query, no matter how many
//! connections raced for it.
//!
//! The whole herd runs at 1, 2, and 4 reactors: reactors shard
//! connections, never workloads, so the reply bytes must be identical
//! at every count, the singleflight counters must not move, and the
//! per-reactor counters must sum exactly to the globals.

use plansample::PlanService;
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_optimizer::OptimizerConfig;
use plansample_serve::server::{self, ServerConfig};
use plansample_serve::state::to_wire_plan;
use plansample_serve::{AdmissionConfig, Client, Request, Response, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Barrier, Mutex};
use std::time::Duration;

const THREADS: usize = 8;
const REACTOR_COUNTS: &[usize] = &[1, 2, 4];
const SAMPLE_SEED: u64 = 0xDEAD_BEEF;
const SAMPLE_K: u32 = 8;

const SQL_WORKLOADS: &[&str] = &[
    "SELECT COUNT(*) FROM nation n1, nation n2 WHERE n1.n_regionkey = n2.n_regionkey",
    "SELECT n_name, COUNT(*) FROM supplier s, nation n, region r \
     WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
     GROUP BY n.n_name",
];

const SYNTH_WORKLOADS: &[(Topology, u16, u64)] = &[(Topology::Chain, 6, 5), (Topology::Star, 5, 9)];

fn workloads() -> Vec<Workload> {
    let mut all: Vec<Workload> = SQL_WORKLOADS
        .iter()
        .map(|sql| Workload::Sql(sql.to_string()))
        .collect();
    all.extend(
        SYNTH_WORKLOADS
            .iter()
            .map(|&(topology, relations, seed)| Workload::Synthetic {
                topology,
                relations,
                seed,
            }),
    );
    all
}

/// The operations each thread performs per workload, in order.
fn ops(workload: &Workload) -> Vec<Request> {
    vec![
        Request::Count(workload.clone()),
        Request::Best(workload.clone()),
        Request::Unrank(workload.clone(), Nat::from(0u64)),
        Request::SampleBatch(workload.clone(), SAMPLE_SEED, SAMPLE_K),
    ]
}

/// What the in-process API says the reply must be, computed through the
/// same `PlanService` machinery the server uses (fresh instances, so
/// nothing is shared with the server under test).
fn expected_replies() -> HashMap<Vec<u8>, Vec<u8>> {
    let config = OptimizerConfig::default();
    let mut expected = HashMap::new();
    for workload in workloads() {
        let (service, query) = match &workload {
            Workload::Sql(sql) => {
                let (catalog, _) = plansample_catalog::tpch::catalog();
                let parsed = plansample_sql::parse(&catalog, sql).expect("workload SQL parses");
                (PlanService::new(catalog, config.clone(), 4), parsed.spec)
            }
            Workload::Synthetic {
                topology,
                relations,
                seed,
            } => {
                let spec = JoinGraphSpec::new(*topology, *relations as usize, *seed);
                let (catalog, query) = spec.build();
                (PlanService::new(catalog, config.clone(), 1), query)
            }
        };
        let p = service.get_or_prepare(&query).expect("workload prepares");
        for request in ops(&workload) {
            let reply = match &request {
                Request::Count(_) => Response::Count(p.total().clone()),
                Request::Best(_) => {
                    let (plan, cost) = p.best();
                    Response::Best(to_wire_plan(plan), cost)
                }
                Request::Unrank(_, rank) => {
                    let plan = p.unrank(rank).expect("rank 0 in range");
                    Response::Plan(to_wire_plan(&plan), p.scaled_cost(&plan))
                }
                Request::SampleBatch(_, seed, k) => {
                    let mut rng = StdRng::seed_from_u64(*seed);
                    Response::Samples(
                        p.sample_batch(&mut rng, *k as usize)
                            .iter()
                            .map(|plan| (to_wire_plan(plan), p.scaled_cost(plan)))
                            .collect(),
                    )
                }
                other => unreachable!("not in the op set: {other:?}"),
            };
            // Key and value both under a fixed id: the comparison is on
            // bytes, not decoded values.
            expected.insert(request.encode(0), reply.encode(0));
        }
    }
    expected
}

/// Runs the full herd against a fresh server with `reactors` event
/// loops and returns (request bytes -> deduplicated reply bytes). Every
/// per-run invariant — reply correctness, singleflight, counter
/// accounting — is asserted in here; the caller only compares the maps
/// across reactor counts.
fn run_herd(reactors: usize, expected: &HashMap<Vec<u8>, Vec<u8>>) -> HashMap<Vec<u8>, Vec<u8>> {
    // Admission raised so the herd's simultaneous *distinct* first
    // preparations are not shed — this test is about correctness and
    // coalescing, not shedding (serving_faults covers that).
    let handle = server::start(ServerConfig {
        reactors,
        workers: 4,
        admission: AdmissionConfig {
            max_prepares: 64,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr();

    // Every thread issues every op for every workload, all released at
    // once; replies are collected as (request bytes -> reply bytes).
    let barrier = Barrier::new(THREADS);
    let observed: Mutex<HashMap<Vec<u8>, Vec<Vec<u8>>>> = Mutex::new(HashMap::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            let observed = &observed;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                // Stagger workload order per thread so distinct queries
                // race each other, not just themselves.
                let mut mine = workloads();
                let shift = t % mine.len();
                mine.rotate_left(shift);
                barrier.wait();
                for workload in &mine {
                    for request in ops(workload) {
                        let reply = client.call(&request).expect("clean reply");
                        assert!(
                            !matches!(reply, Response::Error { .. }),
                            "typed error under herd: {reply:?}"
                        );
                        observed
                            .lock()
                            .unwrap()
                            .entry(request.encode(0))
                            .or_default()
                            .push(reply.encode(0));
                    }
                }
            });
        }
    });

    // Every reply matches the in-process API byte-for-byte, across
    // every thread.
    let observed = observed.into_inner().unwrap();
    assert_eq!(observed.len(), expected.len(), "every op was exercised");
    for (request, replies) in &observed {
        let want = expected.get(request).expect("request came from the op set");
        assert_eq!(replies.len(), THREADS);
        for got in replies {
            assert_eq!(
                got, want,
                "network reply diverged from the in-process API at {reactors} reactors"
            );
        }
    }

    // Singleflight through the network: the TPC-H service optimized
    // each distinct SQL query exactly once — every other preparation
    // was a hit or coalesced onto the flight — no matter how many
    // reactors the connections were sharded over. Synthetic workloads
    // get one single-entry service each.
    let tpch = handle.state().tpch_service().stats();
    assert_eq!(
        tpch.misses,
        SQL_WORKLOADS.len() as u64,
        "one optimization per distinct query at {reactors} reactors, got {tpch:?}"
    );
    let stats = handle.state().stats();
    assert_eq!(stats.synth_services, SYNTH_WORKLOADS.len() as u64);
    assert_eq!(stats.shed_queue, 0);
    assert_eq!(stats.shed_prepare, 0);
    assert_eq!(stats.wire_errors, 0);
    assert_eq!(
        stats.requests,
        (THREADS * workloads().len() * 4) as u64,
        "every request was decoded"
    );
    // The admission ledger: everything decoded was either admitted or
    // queue-shed, nothing fell between the counters.
    assert_eq!(
        stats.requests,
        stats.requests_admitted + stats.shed_queue,
        "admission ledger out of balance at {reactors} reactors: {stats:?}"
    );
    // Connections pin to one reactor for life, so the per-reactor
    // breakdown sums exactly to the globals — no double counting, no
    // leaks across the handoff.
    assert_eq!(stats.per_reactor.len(), reactors);
    let (req_sum, conn_sum) = stats.per_reactor.iter().fold((0u64, 0u64), |(r, c), s| {
        (r + s.requests, c + s.connections)
    });
    assert_eq!(req_sum, stats.requests, "per-reactor requests don't sum");
    assert_eq!(
        conn_sum, stats.connections_total,
        "per-reactor connections don't sum"
    );
    handle.stop();

    observed
        .into_iter()
        .map(|(request, mut replies)| {
            replies.dedup();
            assert_eq!(replies.len(), 1, "replies diverged within one run");
            (request, replies.pop().unwrap())
        })
        .collect()
}

#[test]
fn herd_of_clients_matches_in_process_api_bit_for_bit_at_every_reactor_count() {
    let expected = expected_replies();
    let mut baseline: Option<HashMap<Vec<u8>, Vec<u8>>> = None;
    for &reactors in REACTOR_COUNTS {
        let observed = run_herd(reactors, &expected);
        // Bit-for-bit across reactor counts: sharding connections over
        // more event loops changes scheduling, never bytes.
        match &baseline {
            None => baseline = Some(observed),
            Some(first) => assert_eq!(
                first, &observed,
                "reply bytes changed between {} and {reactors} reactors",
                REACTOR_COUNTS[0]
            ),
        }
    }
}
