//! The worked example of the paper's Figures 2/3 and appendix, as a
//! hand-built MEMO fixture.
//!
//! Three relations A, B, C with an index on each key column. The memo
//! reproduces the link structure the paper draws:
//!
//! ```text
//! group A   : TableScan_A, SortedIdxScan_A, Sort_A        (paper 1.2/1.3/1.4)
//! group B   : TableScan_B, SortedIdxScan_B                (paper 2.2/2.3)
//! group C   : TableScan_C, SortedIdxScan_C                (paper 4.2/4.3)
//! group A⋈B : HashJoin(A,B)  N=3·2=6                      (paper 3.3)
//!             MergeJoin(A,B) N=2·1=2                      (paper 3.4)
//! root      : HashJoin(C, A⋈B)  N=2·8=16                  (paper 7.7)
//!             HashJoin(A⋈B, C)  N=8·2=16                  (paper 7.8)
//! total: 32 plans
//! ```
//!
//! The appendix unranks the pair `(13, root)` and obtains the operators
//! `7.7, 4.3, 3.4, 2.3, 1.3`; in this fixture that corresponds to the
//! root `HashJoin(C, A⋈B)` with `SortedIdxScan_C`, `MergeJoin(A,B)`,
//! `SortedIdxScan_A`, `SortedIdxScan_B` — asserted by the crate tests.

use plansample_catalog::{table, Catalog, ColType};
use plansample_memo::{GroupId, GroupKey, Memo, PhysId, PhysicalExpr, PhysicalOp, SortOrder};
use plansample_query::{ColRef, QueryBuilder, QuerySpec, RelId, RelSet};

/// The fixture: catalog, query, memo, and named expression ids.
#[derive(Debug)]
pub struct PaperExample {
    /// Catalog with tables A, B, C.
    pub catalog: Catalog,
    /// The three-relation query (edges `A.k = B.k`, `B.m = C.k`).
    pub query: QuerySpec,
    /// The hand-built memo.
    pub memo: Memo,
    /// Group of relation A.
    pub group_a: GroupId,
    /// Group of relation B.
    pub group_b: GroupId,
    /// Group of relation C.
    pub group_c: GroupId,
    /// Group of A⋈B.
    pub group_ab: GroupId,
    /// Root group (A⋈B⋈C).
    pub group_root: GroupId,
    /// Heap scan of A (paper 1.2).
    pub table_scan_a: PhysId,
    /// Index scan of A (paper 1.3).
    pub idx_scan_a: PhysId,
    /// Sort enforcer in group A (paper 1.4).
    pub sort_a: PhysId,
    /// Heap scan of B (paper 2.2).
    pub table_scan_b: PhysId,
    /// Index scan of B (paper 2.3).
    pub idx_scan_b: PhysId,
    /// Heap scan of C (paper 4.2).
    pub table_scan_c: PhysId,
    /// Index scan of C (paper 4.3).
    pub idx_scan_c: PhysId,
    /// Hash join A⋈B (paper 3.3).
    pub hash_join_ab: PhysId,
    /// Merge join A⋈B (paper 3.4).
    pub merge_join_ab: PhysId,
    /// Root hash join C ⋈ (A⋈B) (paper 7.7).
    pub root_c_ab: PhysId,
    /// Root hash join (A⋈B) ⋈ C (paper 7.8).
    pub root_ab_c: PhysId,
}

/// Builds the fixture.
pub fn build() -> PaperExample {
    let mut catalog = Catalog::new();
    catalog
        .add_table(
            table("a", 100)
                .col("k", ColType::Int, 100)
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");
    catalog
        .add_table(
            table("b", 200)
                .col("k", ColType::Int, 100)
                .col("m", ColType::Int, 50)
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");
    catalog
        .add_table(
            table("c", 50)
                .col("k", ColType::Int, 50)
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");

    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("a", None).expect("table exists");
    qb.rel("b", None).expect("table exists");
    qb.rel("c", None).expect("table exists");
    qb.join(("a", "k"), ("b", "k")).expect("columns exist");
    qb.join(("b", "m"), ("c", "k")).expect("columns exist");
    let query = qb.build().expect("valid query");

    let (ra, rb, rc) = (RelId(0), RelId(1), RelId(2));
    let a_k = ColRef { rel: ra, col: 0 };
    let b_k = ColRef { rel: rb, col: 0 };
    let c_k = ColRef { rel: rc, col: 0 };

    let mut memo = Memo::new();
    let group_a = memo.add_group(GroupKey::Rels(RelSet::singleton(ra)));
    let group_b = memo.add_group(GroupKey::Rels(RelSet::singleton(rb)));
    let group_c = memo.add_group(GroupKey::Rels(RelSet::singleton(rc)));
    let group_ab = memo.add_group(GroupKey::Rels(RelSet::from_iter([ra, rb])));
    let group_root = memo.add_group(GroupKey::Rels(RelSet::all(3)));

    let phys = |op: PhysicalOp, cost: f64, card: f64| PhysicalExpr::new(op, cost, card);

    let table_scan_a = memo
        .add_physical(
            group_a,
            phys(PhysicalOp::TableScan { rel: ra }, 100.0, 100.0),
        )
        .expect("new expression");
    let idx_scan_a = memo
        .add_physical(
            group_a,
            phys(
                PhysicalOp::SortedIdxScan { rel: ra, col: a_k },
                120.0,
                100.0,
            ),
        )
        .expect("new expression");
    let sort_a = memo
        .add_physical(
            group_a,
            phys(
                PhysicalOp::Sort {
                    target: SortOrder::on_col(a_k),
                },
                80.0,
                100.0,
            ),
        )
        .expect("new expression");

    let table_scan_b = memo
        .add_physical(
            group_b,
            phys(PhysicalOp::TableScan { rel: rb }, 200.0, 200.0),
        )
        .expect("new expression");
    let idx_scan_b = memo
        .add_physical(
            group_b,
            phys(
                PhysicalOp::SortedIdxScan { rel: rb, col: b_k },
                240.0,
                200.0,
            ),
        )
        .expect("new expression");

    let table_scan_c = memo
        .add_physical(group_c, phys(PhysicalOp::TableScan { rel: rc }, 50.0, 50.0))
        .expect("new expression");
    let idx_scan_c = memo
        .add_physical(
            group_c,
            phys(PhysicalOp::SortedIdxScan { rel: rc, col: c_k }, 60.0, 50.0),
        )
        .expect("new expression");

    let hash_join_ab = memo
        .add_physical(
            group_ab,
            phys(
                PhysicalOp::HashJoin {
                    left: group_a,
                    right: group_b,
                },
                350.0,
                200.0,
            ),
        )
        .expect("new expression");
    let merge_join_ab = memo
        .add_physical(
            group_ab,
            phys(
                PhysicalOp::MergeJoin {
                    left: group_a,
                    right: group_b,
                    left_key: a_k,
                    right_key: b_k,
                },
                300.0,
                200.0,
            ),
        )
        .expect("new expression");

    let root_c_ab = memo
        .add_physical(
            group_root,
            phys(
                PhysicalOp::HashJoin {
                    left: group_c,
                    right: group_ab,
                },
                275.0,
                200.0,
            ),
        )
        .expect("new expression");
    let root_ab_c = memo
        .add_physical(
            group_root,
            phys(
                PhysicalOp::HashJoin {
                    left: group_ab,
                    right: group_c,
                },
                350.0,
                200.0,
            ),
        )
        .expect("new expression");

    memo.set_root(group_root);

    PaperExample {
        catalog,
        query,
        memo,
        group_a,
        group_b,
        group_c,
        group_ab,
        group_root,
        table_scan_a,
        idx_scan_a,
        sort_a,
        table_scan_b,
        idx_scan_b,
        table_scan_c,
        idx_scan_c,
        hash_join_ab,
        merge_join_ab,
        root_c_ab,
        root_ab_c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shape() {
        let ex = build();
        assert_eq!(ex.memo.num_groups(), 5);
        assert_eq!(ex.memo.num_physical(), 11);
        assert_eq!(ex.memo.root(), ex.group_root);
        assert_eq!(ex.memo.group(ex.group_a).physical.len(), 3);
        assert_eq!(ex.memo.group(ex.group_ab).physical.len(), 2);
    }

    #[test]
    fn ids_point_at_expected_operators() {
        let ex = build();
        assert_eq!(ex.memo.phys(ex.sort_a).op.name(), "Sort");
        assert_eq!(ex.memo.phys(ex.merge_join_ab).op.name(), "MergeJoin");
        assert_eq!(ex.memo.phys(ex.root_c_ab).op.name(), "HashJoin");
        assert!(ex.memo.phys(ex.idx_scan_b).op.is_leaf());
    }
}
