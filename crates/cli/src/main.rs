//! `plansample` binary entry point; all logic lives in the library for
//! testability.

fn main() {
    let cli = match plansample_cli::parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match plansample_cli::run(&cli) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
