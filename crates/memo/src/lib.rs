//! The MEMO structure (paper §2): a compact, shared encoding of every
//! candidate plan the optimizer considered.
//!
//! A [`Memo`] manages a system of [`Group`]s; each group represents one
//! optimization sub-goal (here: a set of base relations, or the final
//! aggregation) and holds the *logical* expressions describing that goal
//! plus the *physical* expressions that implement it. Expression children
//! are references to groups, never to concrete expressions — that
//! indirection is what makes the structure a compact product encoding of
//! exponentially many plans, and it is exactly what the paper's counting
//! and unranking algorithms exploit.
//!
//! Group identity is the set of base relations covered (plus a marker for
//! the aggregation goal). For a single select-project-join block this is a
//! sound key: the predicates applied inside a sub-plan are a function of
//! its relation set, so two sub-plans over the same set are semantically
//! interchangeable. Duplicate expressions within a group are detected
//! structurally, mirroring the MEMO's "detect and eliminate duplicates"
//! routines.
//!
//! The memo can be populated by the optimizer (crate
//! `plansample-optimizer`) or built by hand — the latter is how the test
//! suite reproduces the worked example of the paper's Figures 2/3 and
//! appendix.

#![warn(missing_docs)]

mod dense;
mod expr;
mod links;
mod plan;
mod props;
mod render;

pub use dense::{DenseId, DenseIdMap};
pub use expr::{ChildSlot, LogicalOp, PhysicalExpr, PhysicalOp, Requirement};
pub use links::eligible_children;
pub use plan::{validate_plan, PlanNode, PlanViolation};
pub use props::{satisfies, satisfies_cols, ColEquivalences, OrderSatisfier, SortOrder};
pub use render::render_memo;

use plansample_query::RelSet;
use std::collections::HashMap;
use std::fmt;

/// Identifies a group within a [`Memo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Identifies a physical expression: group plus position within the
/// group's physical expression list. Displayed `group.index` (1-based on
/// the index, matching the paper's `7.7` style labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysId {
    /// Owning group.
    pub group: GroupId,
    /// Position within [`Group::physical`].
    pub index: usize,
}

impl fmt::Display for PhysId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.group.0, self.index + 1)
    }
}

/// What a group stands for: the optimization sub-goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// All plans producing the join of this relation set (a singleton set
    /// is a base-table access goal).
    Rels(RelSet),
    /// The final aggregation over the full join (at most one per memo).
    Agg,
}

impl GroupKey {
    /// The relation set this goal covers; `None` for the aggregate goal
    /// (which implicitly covers all relations).
    pub fn rels(&self) -> Option<RelSet> {
        match self {
            GroupKey::Rels(s) => Some(*s),
            GroupKey::Agg => None,
        }
    }
}

/// One optimization sub-goal and its alternative expressions.
#[derive(Debug, Clone)]
pub struct Group {
    /// This group's id.
    pub id: GroupId,
    /// The sub-goal.
    pub key: GroupKey,
    /// Logical alternatives (used during exploration; not counted).
    pub logical: Vec<LogicalOp>,
    /// Physical alternatives — the operators the paper counts and samples.
    pub physical: Vec<PhysicalExpr>,
}

impl Group {
    /// The physical expression at `index`.
    pub fn phys(&self, index: usize) -> &PhysicalExpr {
        &self.physical[index]
    }

    /// The relation set sub-plans of this group cover (the aggregate goal
    /// covers all relations of the query).
    pub fn scope(&self, query: &plansample_query::QuerySpec) -> RelSet {
        match self.key {
            GroupKey::Rels(s) => s,
            GroupKey::Agg => query.all_rels(),
        }
    }

    /// Iterates `(PhysId, expr)` pairs.
    pub fn phys_iter(&self) -> impl Iterator<Item = (PhysId, &PhysicalExpr)> {
        let gid = self.id;
        self.physical
            .iter()
            .enumerate()
            .map(move |(index, e)| (PhysId { group: gid, index }, e))
    }
}

/// The MEMO: groups, expression dedup, and a designated root group.
#[derive(Debug, Clone, Default)]
pub struct Memo {
    groups: Vec<Group>,
    by_key: HashMap<GroupKey, GroupId>,
    root: Option<GroupId>,
}

impl Memo {
    /// An empty memo.
    pub fn new() -> Self {
        Memo::default()
    }

    /// Returns the group for `key`, creating it on first use.
    pub fn add_group(&mut self, key: GroupKey) -> GroupId {
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            id,
            key,
            logical: Vec::new(),
            physical: Vec::new(),
        });
        self.by_key.insert(key, id);
        id
    }

    /// Looks up a group by key without creating it.
    pub fn find_group(&self, key: GroupKey) -> Option<GroupId> {
        self.by_key.get(&key).copied()
    }

    /// Immutable access to a group.
    ///
    /// # Panics
    /// Panics when `id` was not issued by this memo.
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    /// All groups in creation order.
    pub fn groups(&self) -> impl Iterator<Item = &Group> {
        self.groups.iter()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Marks `id` as the root group (the goal of the whole query).
    pub fn set_root(&mut self, id: GroupId) {
        assert!(
            (id.0 as usize) < self.groups.len(),
            "root group not in memo"
        );
        self.root = Some(id);
    }

    /// The root group id.
    ///
    /// # Panics
    /// Panics if no root was set.
    pub fn root(&self) -> GroupId {
        self.root.expect("memo root not set")
    }

    /// Adds a logical expression, returning `false` when an identical one
    /// already exists in the group (duplicate elimination).
    pub fn add_logical(&mut self, gid: GroupId, op: LogicalOp) -> bool {
        let group = &mut self.groups[gid.0 as usize];
        if group.logical.contains(&op) {
            return false;
        }
        group.logical.push(op);
        true
    }

    /// Adds a physical expression, returning its id, or `None` when a
    /// structurally identical operator already exists in the group.
    pub fn add_physical(&mut self, gid: GroupId, expr: PhysicalExpr) -> Option<PhysId> {
        let group = &mut self.groups[gid.0 as usize];
        if group.physical.iter().any(|e| e.op == expr.op) {
            return None;
        }
        let index = group.physical.len();
        group.physical.push(expr);
        Some(PhysId { group: gid, index })
    }

    /// The physical expression behind `id`.
    pub fn phys(&self, id: PhysId) -> &PhysicalExpr {
        &self.groups[id.group.0 as usize].physical[id.index]
    }

    /// Total number of logical expressions across groups.
    pub fn num_logical(&self) -> usize {
        self.groups.iter().map(|g| g.logical.len()).sum()
    }

    /// Total number of physical expressions across groups — the paper's
    /// "size of the MEMO" for the linear-time counting bound.
    pub fn num_physical(&self) -> usize {
        self.groups.iter().map(|g| g.physical.len()).sum()
    }

    /// Reassembles a memo from serialized group tables in one pass — the
    /// artifact loader's bulk path, equivalent to replaying `add_group` /
    /// `add_logical` / `add_physical` / `set_root` in creation order but
    /// without the per-insert duplicate scans (which are quadratic in
    /// group size and would dominate a 700k-expression reload).
    ///
    /// The incremental builders' invariants are still *checked*, in
    /// O(total expressions): group keys must be distinct, expressions
    /// structurally deduplicated within their group, every child group
    /// reference in range, and `root` one of the groups. A violation
    /// returns a description of the first broken invariant instead of
    /// producing a memo other code would misindex.
    pub fn from_parts(
        parts: Vec<(GroupKey, Vec<LogicalOp>, Vec<PhysicalExpr>)>,
        root: u32,
    ) -> Result<Memo, String> {
        if (root as usize) >= parts.len() {
            return Err(format!(
                "root group {root} out of range ({} groups)",
                parts.len()
            ));
        }
        let num_groups = parts.len();
        let in_range = |g: &GroupId| (g.0 as usize) < num_groups;
        let mut by_key = HashMap::with_capacity(num_groups);
        for (i, (key, logical, physical)) in parts.iter().enumerate() {
            if by_key.insert(*key, GroupId(i as u32)).is_some() {
                return Err(format!("duplicate group key {key:?}"));
            }
            let mut seen = std::collections::HashSet::with_capacity(physical.len());
            for expr in physical {
                if !seen.insert(&expr.op) {
                    return Err(format!("duplicate physical operator in group {i}"));
                }
                let children_ok = match &expr.op {
                    PhysicalOp::TableScan { .. }
                    | PhysicalOp::SortedIdxScan { .. }
                    | PhysicalOp::Sort { .. } => true,
                    PhysicalOp::NestedLoopJoin { left, right }
                    | PhysicalOp::HashJoin { left, right }
                    | PhysicalOp::MergeJoin { left, right, .. } => {
                        in_range(left) && in_range(right)
                    }
                    PhysicalOp::HashAgg { input } | PhysicalOp::StreamAgg { input, .. } => {
                        in_range(input)
                    }
                };
                if !children_ok {
                    return Err(format!("group {i} references a group out of range"));
                }
            }
            for op in logical {
                let children_ok = match op {
                    LogicalOp::Scan { .. } => true,
                    LogicalOp::Join { left, right } => in_range(left) && in_range(right),
                    LogicalOp::Agg { input } => in_range(input),
                };
                if !children_ok {
                    return Err(format!(
                        "group {i} logical op references a group out of range"
                    ));
                }
            }
        }
        let groups = parts
            .into_iter()
            .enumerate()
            .map(|(i, (key, logical, physical))| Group {
                id: GroupId(i as u32),
                key,
                logical,
                physical,
            })
            .collect();
        Ok(Memo {
            groups,
            by_key,
            root: Some(GroupId(root)),
        })
    }

    /// Releases the spare capacity `add_group`/`add_physical`'s amortized
    /// growth left behind in every per-group vector.
    ///
    /// A memo is built once (exploration + implementation) and then read
    /// forever by the plan-space machinery, which also keeps it resident
    /// for as long as a [`PreparedQuery`] lives — so the optimizer calls
    /// this when optimization finishes. On large memos the doubling
    /// slack is ~40% of the expression storage (docs/EXPERIMENTS.md
    /// §E10), all of it charged to cache byte budgets via
    /// [`size_bytes`](Self::size_bytes).
    ///
    /// [`PreparedQuery`]: https://docs.rs/plansample
    pub fn shrink_to_fit(&mut self) {
        self.groups.shrink_to_fit();
        for group in &mut self.groups {
            group.logical.shrink_to_fit();
            group.physical.shrink_to_fit();
        }
    }

    /// Bytes of memory held by this memo: the struct itself plus the
    /// heap behind every group, expression, and the group-key index.
    ///
    /// Vector buffers are accounted at capacity (what the allocator
    /// actually holds); the `by_key` hash table is accounted per bucket
    /// at the standard hashbrown load factor (8/7 of the entry count),
    /// the closest observable bound to its real allocation.
    pub fn size_bytes(&self) -> usize {
        let groups_heap: usize = self
            .groups
            .iter()
            .map(|g| {
                g.logical.capacity() * std::mem::size_of::<LogicalOp>()
                    + g.physical.capacity() * std::mem::size_of::<PhysicalExpr>()
                    + g.physical
                        .iter()
                        .map(PhysicalExpr::heap_bytes)
                        .sum::<usize>()
            })
            .sum();
        let by_key = self.by_key.len() * (std::mem::size_of::<(GroupKey, GroupId)>() + 1) * 8 / 7;
        std::mem::size_of::<Self>()
            + self.groups.capacity() * std::mem::size_of::<Group>()
            + groups_heap
            + by_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_query::{ColRef, RelId};

    fn rs(ids: &[u32]) -> RelSet {
        RelSet::from_iter(ids.iter().map(|&i| RelId(i)))
    }

    fn col(rel: u32, col: u32) -> ColRef {
        ColRef {
            rel: RelId(rel),
            col,
        }
    }

    #[test]
    fn groups_are_keyed_and_deduplicated() {
        let mut memo = Memo::new();
        let a = memo.add_group(GroupKey::Rels(rs(&[0])));
        let b = memo.add_group(GroupKey::Rels(rs(&[1])));
        let a2 = memo.add_group(GroupKey::Rels(rs(&[0])));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(memo.num_groups(), 2);
        assert_eq!(memo.find_group(GroupKey::Rels(rs(&[0]))), Some(a));
        assert_eq!(memo.find_group(GroupKey::Agg), None);
    }

    #[test]
    fn logical_dedup() {
        let mut memo = Memo::new();
        let g = memo.add_group(GroupKey::Rels(rs(&[0])));
        assert!(memo.add_logical(g, LogicalOp::Scan { rel: RelId(0) }));
        assert!(!memo.add_logical(g, LogicalOp::Scan { rel: RelId(0) }));
        assert_eq!(memo.num_logical(), 1);
    }

    #[test]
    fn physical_dedup_is_structural() {
        let mut memo = Memo::new();
        let g = memo.add_group(GroupKey::Rels(rs(&[0])));
        let scan = PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 1.0, 100.0);
        let id = memo.add_physical(g, scan.clone()).unwrap();
        assert_eq!(id, PhysId { group: g, index: 0 });
        // same op, different cost: still a duplicate (structure decides)
        let dup = PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 99.0, 100.0);
        assert!(memo.add_physical(g, dup).is_none());
        let other = PhysicalExpr::new(
            PhysicalOp::SortedIdxScan {
                rel: RelId(0),
                col: col(0, 0),
            },
            2.0,
            100.0,
        );
        assert!(memo.add_physical(g, other).is_some());
        assert_eq!(memo.num_physical(), 2);
    }

    #[test]
    fn phys_id_display_is_one_based() {
        let id = PhysId {
            group: GroupId(7),
            index: 6,
        };
        assert_eq!(id.to_string(), "7.7");
    }

    #[test]
    fn root_handling() {
        let mut memo = Memo::new();
        let g = memo.add_group(GroupKey::Agg);
        memo.set_root(g);
        assert_eq!(memo.root(), g);
    }

    #[test]
    #[should_panic(expected = "root not set")]
    fn missing_root_panics() {
        Memo::new().root();
    }

    #[test]
    #[should_panic(expected = "root group not in memo")]
    fn foreign_root_rejected() {
        let mut memo = Memo::new();
        memo.set_root(GroupId(3));
    }

    #[test]
    fn from_parts_replays_incremental_building() {
        let mut memo = Memo::new();
        let g0 = memo.add_group(GroupKey::Rels(rs(&[0])));
        memo.add_physical(
            g0,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 1.0, 10.0),
        )
        .unwrap();
        let g1 = memo.add_group(GroupKey::Rels(rs(&[1])));
        memo.add_physical(
            g1,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(1) }, 2.0, 20.0),
        )
        .unwrap();
        let g2 = memo.add_group(GroupKey::Rels(rs(&[0, 1])));
        memo.add_logical(
            g2,
            LogicalOp::Join {
                left: g0,
                right: g1,
            },
        );
        memo.add_physical(
            g2,
            PhysicalExpr::new(
                PhysicalOp::HashJoin {
                    left: g0,
                    right: g1,
                },
                3.0,
                5.0,
            ),
        )
        .unwrap();
        memo.set_root(g2);

        let parts: Vec<_> = memo
            .groups()
            .map(|g| (g.key, g.logical.clone(), g.physical.clone()))
            .collect();
        let rebuilt = Memo::from_parts(parts, memo.root().0).unwrap();
        assert_eq!(rebuilt.num_groups(), memo.num_groups());
        assert_eq!(rebuilt.num_physical(), memo.num_physical());
        assert_eq!(rebuilt.num_logical(), memo.num_logical());
        assert_eq!(rebuilt.root(), memo.root());
        assert_eq!(rebuilt.find_group(GroupKey::Rels(rs(&[0, 1]))), Some(g2));
        assert_eq!(
            format!("{:?}", rebuilt.group(g2)),
            format!("{:?}", memo.group(g2))
        );
    }

    #[test]
    fn from_parts_rejects_broken_invariants() {
        let scan = |r: u32| PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(r) }, 1.0, 1.0);
        // Root out of range.
        let err = Memo::from_parts(vec![(GroupKey::Rels(rs(&[0])), vec![], vec![scan(0)])], 5)
            .unwrap_err();
        assert!(err.contains("root"), "{err}");
        // Duplicate group keys.
        let err = Memo::from_parts(
            vec![
                (GroupKey::Rels(rs(&[0])), vec![], vec![scan(0)]),
                (GroupKey::Rels(rs(&[0])), vec![], vec![scan(0)]),
            ],
            0,
        )
        .unwrap_err();
        assert!(err.contains("duplicate group key"), "{err}");
        // Duplicate operator inside one group.
        let err = Memo::from_parts(
            vec![(GroupKey::Rels(rs(&[0])), vec![], vec![scan(0), scan(0)])],
            0,
        )
        .unwrap_err();
        assert!(err.contains("duplicate physical"), "{err}");
        // Child group reference past the table.
        let join = PhysicalExpr::new(
            PhysicalOp::HashJoin {
                left: GroupId(0),
                right: GroupId(9),
            },
            1.0,
            1.0,
        );
        let err =
            Memo::from_parts(vec![(GroupKey::Rels(rs(&[0])), vec![], vec![join])], 0).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn group_iteration() {
        let mut memo = Memo::new();
        let g = memo.add_group(GroupKey::Rels(rs(&[0])));
        let scan = PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 1.0, 10.0);
        memo.add_physical(g, scan).unwrap();
        let group = memo.group(g);
        let items: Vec<_> = group.phys_iter().collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, PhysId { group: g, index: 0 });
        assert_eq!(memo.groups().count(), 1);
    }
}
