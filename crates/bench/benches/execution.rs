//! Differential-testing execution throughput (§4): how fast sampled
//! plans can be lowered and run against the micro TPC-H database —
//! the inner loop of `validate_sampled`.

use criterion::{criterion_group, criterion_main, Criterion};
use plansample::lower::lower;
use plansample_bench::prepare;
use plansample_bignum::Nat;
use plansample_datagen::MicroScale;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_execution(c: &mut Criterion) {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 42);
    let q5 = plansample_query::tpch::q5(&catalog);
    let prepared = prepare(&catalog, "Q5", q5, false);
    let space = prepared.space();

    // The optimizer's plan (rank of the cheapest root completion is not
    // 0 in general; use plan 0 as a fixed representative and a mid-rank
    // plan as a "weird" representative).
    let plan0 = space.unrank(&Nat::zero()).unwrap();
    let (mid, _) = space.total().div_rem(&Nat::from(2u64));
    let plan_mid = space.unrank(&mid).unwrap();

    c.bench_function("execute/Q5_plan0", |b| {
        let exec = lower(prepared.memo(), prepared.query(), &catalog, &plan0);
        b.iter(|| std::hint::black_box(exec.execute(&db).unwrap()))
    });
    c.bench_function("execute/Q5_mid_rank", |b| {
        let exec = lower(prepared.memo(), prepared.query(), &catalog, &plan_mid);
        b.iter(|| std::hint::black_box(exec.execute(&db).unwrap()))
    });

    // Full differential iteration: sample + lower + execute.
    let mut group = c.benchmark_group("differential_iteration");
    group.sample_size(20);
    group.bench_function("Q5_sample_lower_execute", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            let plan = space.sample(&mut rng);
            let exec = lower(prepared.memo(), prepared.query(), &catalog, &plan);
            std::hint::black_box(exec.execute(&db).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
