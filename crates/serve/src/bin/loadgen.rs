//! `plansample-loadgen` — drive a plan server with a concurrent mixed
//! workload and write a latency/throughput report.
//!
//! Two modes:
//!
//! * `--inline` (default) starts a server in-process on a loopback
//!   port, runs the load against it, and shuts it down; or
//! * `--addr HOST:PORT` targets an already-running server
//!   (`plansample-cli serve`).
//!
//! `--validate FILE` instead checks an existing report against the
//! `BENCH_serving.json` schema and exits nonzero if it is malformed or
//! records protocol errors.

use plansample_serve::loadgen::{self, LoadgenConfig};
use plansample_serve::server::{self, ServerConfig};
use std::net::SocketAddr;
use std::process::ExitCode;

const USAGE: &str = "\
plansample-loadgen: load-test a plan server

USAGE:
    plansample-loadgen [OPTIONS]
    plansample-loadgen --validate FILE

OPTIONS:
    --inline              start a server in-process (default when --addr absent)
    --addr HOST:PORT      target an already-running server
    --connections N       concurrent connections        [default: 100]
    --requests N          requests per connection       [default: 50]
    --seed S              workload seed                 [default: 42]
    --workers N           inline server worker threads  [default: 4]
    --out FILE            write the JSON report here
    --validate FILE       validate an existing report and exit
    --help                print this help
";

struct Args {
    addr: Option<SocketAddr>,
    config: LoadgenConfig,
    workers: usize,
    out: Option<String>,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        config: LoadgenConfig::default(),
        workers: 4,
        out: None,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--inline" => args.addr = None,
            "--addr" => {
                let v = value("--addr")?;
                args.addr = Some(v.parse().map_err(|e| format!("bad --addr {v:?}: {e}"))?);
            }
            "--connections" => {
                let v = value("--connections")?;
                args.config.connections = v
                    .parse()
                    .map_err(|e| format!("bad --connections {v:?}: {e}"))?;
            }
            "--requests" => {
                let v = value("--requests")?;
                args.config.requests_per_connection = v
                    .parse()
                    .map_err(|e| format!("bad --requests {v:?}: {e}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                args.config.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                args.workers = v.parse().map_err(|e| format!("bad --workers {v:?}: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--validate" => args.validate = Some(value("--validate")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.config.connections == 0 || args.config.requests_per_connection == 0 {
        return Err("--connections and --requests must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("plansample-loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.validate {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("plansample-loadgen: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match loadgen::validate_report(&text) {
            Ok(()) => {
                println!("{path}: valid serving report");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Resolve the target: an external server, or an inline one.
    let mut inline = None;
    let addr = match args.addr {
        Some(addr) => addr,
        None => {
            let handle = match server::start(ServerConfig {
                workers: args.workers,
                ..ServerConfig::default()
            }) {
                Ok(handle) => handle,
                Err(e) => {
                    eprintln!("plansample-loadgen: failed to start inline server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = handle.addr();
            inline = Some(handle);
            addr
        }
    };

    eprintln!(
        "driving {} connections x {} requests against {addr} (seed {})",
        args.config.connections, args.config.requests_per_connection, args.config.seed
    );
    let report = loadgen::run(addr, &args.config);
    if let Some(handle) = inline {
        handle.stop();
    }

    println!(
        "requests {}  ok {}  overloaded {}  app_errors {}  protocol_errors {}",
        report.sent, report.ok, report.overloaded, report.app_errors, report.protocol_errors
    );
    println!(
        "elapsed {:.3}s  throughput {:.0} req/s",
        report.elapsed.as_secs_f64(),
        report.throughput()
    );
    println!(
        "latency us  p50 {}  p90 {}  p99 {}  p999 {}  max {}",
        report.latency_us(0.50),
        report.latency_us(0.90),
        report.latency_us(0.99),
        report.latency_us(0.999),
        report.latencies_us.last().copied().unwrap_or(0),
    );
    if let Some(s) = &report.server {
        println!(
            "server      hits {}  misses {}  coalesced {}  shed_queue {}  shed_prepare {}  wire_errors {}",
            s.hits, s.misses, s.coalesced, s.shed_queue, s.shed_prepare, s.wire_errors
        );
    }

    let json = loadgen::report_json(&report);
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("plansample-loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
    }

    if report.protocol_errors > 0 || report.app_errors > 0 {
        eprintln!("plansample-loadgen: run was not clean");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
