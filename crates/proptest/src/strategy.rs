//! The [`Strategy`] trait and the primitive strategies the workspace uses:
//! [`any`] over integer types, integer ranges, and [`Map`].

use crate::test_runner::TestRunner;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike crates.io proptest, a strategy here produces plain values rather
/// than shrinkable value trees.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Returns a strategy generating `f(v)` for `v` drawn from `self`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Returns a strategy drawing from the strategy `f(v)` built from a
    /// fresh `v` drawn from `self`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy (useful for heterogeneous collections).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

/// Each element generates independently; the values come back in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        self.iter().map(|s| s.generate(runner)).collect()
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.source.generate(runner)).generate(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.generate(runner))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draws a value uniformly from the type's whole domain.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// Returns the whole-domain strategy for `T` (`any::<u64>()` style).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        u128::arbitrary(runner) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

/// Exactly uniform draw from `[lo, hi]` over the `u128` domain.
pub(crate) fn uniform_u128_inclusive(runner: &mut TestRunner, lo: u128, hi: u128) -> u128 {
    debug_assert!(lo <= hi);
    if lo == 0 && hi == u128::MAX {
        return u128::arbitrary(runner);
    }
    let span = hi - lo + 1;
    let excess = (u128::MAX % span + 1) % span;
    loop {
        let r = u128::arbitrary(runner);
        if excess == 0 || r < u128::MAX - excess + 1 {
            return lo + r % span;
        }
    }
}

/// Integer types whose ranges act as strategies.
pub trait RangeValue: Copy + PartialOrd {
    /// Order-preserving map into the `u128` sampling domain.
    fn to_u128_repr(self) -> u128;
    /// Inverse of [`to_u128_repr`](Self::to_u128_repr).
    fn from_u128_repr(repr: u128) -> Self;
}

macro_rules! impl_range_value_unsigned {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u128_repr(self) -> u128 {
                self as u128
            }

            fn from_u128_repr(repr: u128) -> Self {
                repr as $t
            }
        }
    )*};
}

impl_range_value_unsigned!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_range_value_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u128_repr(self) -> u128 {
                // Flip the sign bit: order-preserving bijection into $u.
                ((self as $u) ^ (1 << (<$u>::BITS - 1))) as u128
            }

            fn from_u128_repr(repr: u128) -> Self {
                ((repr as $u) ^ (1 << (<$u>::BITS - 1))) as $t
            }
        }
    )*};
}

impl_range_value_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        assert!(self.start < self.end, "strategy range is empty");
        let lo = self.start.to_u128_repr();
        let hi = self.end.to_u128_repr() - 1;
        T::from_u128_repr(uniform_u128_inclusive(runner, lo, hi))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        let (start, end) = (self.start(), self.end());
        assert!(start <= end, "strategy range is empty");
        let lo = start.to_u128_repr();
        let hi = end.to_u128_repr();
        T::from_u128_repr(uniform_u128_inclusive(runner, lo, hi))
    }
}
