//! Conversions: primitives, decimal strings, scientific notation for reports.

use crate::Nat;
use std::fmt;
use std::str::FromStr;

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::small(v)
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from(v as u64)
    }
}

impl From<usize> for Nat {
    fn from(v: usize) -> Self {
        Nat::from(v as u64)
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        if v <= u64::MAX as u128 {
            Nat::small(v as u64)
        } else {
            Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
        }
    }
}

impl Nat {
    /// Exact conversion to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        self.as_small()
    }

    /// Exact conversion to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs() {
            [] => Some(0),
            &[lo] => Some(lo as u128),
            &[lo, hi] => Some(lo as u128 | (hi as u128) << 64),
            _ => None,
        }
    }

    /// Parses a decimal string (digits only; no sign, no separators).
    pub fn from_decimal(s: &str) -> Result<Nat, ParseNatError> {
        if s.is_empty() {
            return Err(ParseNatError::Empty);
        }
        let mut out = Nat::zero();
        // Consume 19 digits at a time (10^19 < 2^64).
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 19).min(bytes.len());
            let chunk = &s[i..end];
            let v: u64 = chunk
                .parse()
                .map_err(|_| ParseNatError::InvalidDigit { offset: i })?;
            if chunk.bytes().any(|b| !b.is_ascii_digit()) {
                return Err(ParseNatError::InvalidDigit { offset: i });
            }
            out.mul_u64_assign(10u64.pow(chunk.len() as u32));
            out.add_u64_assign(v);
            i = end;
        }
        Ok(out)
    }

    /// Decimal string (the `Display` impl delegates here).
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Peel off 19 digits at a time from the low end.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10u64.pow(19));
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks.last().unwrap().to_string();
        for chunk in chunks.iter().rev().skip(1) {
            out.push_str(&format!("{chunk:019}"));
        }
        out
    }

    /// Compact scientific rendering like `4.43e12`, used in experiment
    /// tables mirroring the paper's layout.
    pub fn to_scientific(&self, precision: usize) -> String {
        let digits = self.to_decimal();
        if digits.len() <= precision + 1 {
            return digits;
        }
        let exp = digits.len() - 1;
        let mantissa_digits = &digits[..=precision];
        let (head, tail) = mantissa_digits.split_at(1);
        format!("{head}.{tail}e{exp}")
    }
}

/// Error produced when parsing a decimal string into a [`Nat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNatError {
    /// The input string was empty.
    Empty,
    /// A non-digit byte appeared at `offset`.
    InvalidDigit {
        /// Byte offset of the offending chunk.
        offset: usize,
    },
}

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNatError::Empty => write!(f, "empty string is not a number"),
            ParseNatError::InvalidDigit { offset } => {
                write!(f, "invalid decimal digit near byte {offset}")
            }
        }
    }
}

impl std::error::Error for ParseNatError {}

impl FromStr for Nat {
    type Err = ParseNatError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Nat::from_decimal(s)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

#[cfg(test)]
mod tests {
    use crate::Nat;

    #[test]
    fn primitive_round_trips() {
        for v in [0u128, 1, 42, u64::MAX as u128, u128::MAX, 1 << 64] {
            assert_eq!(Nat::from(v).to_u128(), Some(v));
        }
        assert_eq!(Nat::from(7u64).to_u64(), Some(7));
        assert_eq!(Nat::from(u128::MAX).to_u64(), None);
        let three_limbs = Nat::from_limbs(vec![1, 1, 1]);
        assert_eq!(three_limbs.to_u128(), None);
    }

    #[test]
    fn decimal_round_trips() {
        for s in [
            "0",
            "1",
            "4432829940185",
            "340282366920938463463374607431768211455",
            "123456789012345678901234567890123456789012345678901234567890",
        ] {
            let n: Nat = s.parse().unwrap();
            assert_eq!(n.to_decimal(), s);
        }
    }

    #[test]
    fn decimal_matches_u128_arithmetic() {
        let v = 987654321987654321u128 * 1000000007;
        assert_eq!(Nat::from(v).to_decimal(), v.to_string());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Nat::from_decimal("").is_err());
        assert!(Nat::from_decimal("12a3").is_err());
        assert!(Nat::from_decimal("-5").is_err());
        assert!(Nat::from_decimal(" 5").is_err());
    }

    #[test]
    fn scientific_rendering() {
        assert_eq!(Nat::from(4432829940185u64).to_scientific(2), "4.43e12");
        assert_eq!(Nat::from(999u64).to_scientific(2), "999");
        assert_eq!(Nat::from(68572049u64).to_scientific(3), "6.857e7");
        assert_eq!(Nat::zero().to_scientific(2), "0");
    }

    #[test]
    fn display_and_debug() {
        let n = Nat::from(123u64);
        assert_eq!(format!("{n}"), "123");
        assert_eq!(format!("{n:?}"), "Nat(123)");
        assert_eq!(format!("{n:>6}"), "   123");
    }
}
