//! Exhaustive generation of the plan space, and resumable cursors.
//!
//! Enumeration is sequential unranking of `0, 1, …, N−1` — the paper's
//! "exhaustive testing" mode for small spaces, doubling as a stress test
//! of unranking. [`PlanCursor`] packages it as a resumable iterator:
//! because position is just a rank, a cursor can start (or jump) at any
//! point of a `10^20`-plan space for the cost of one unranking instead of
//! walking there from zero — pagination over astronomically large spaces
//! is as cheap as pagination over small ones.
//!
//! The historical `enumerate_recursive(limit)` entry point (a direct
//! recursive cross product over the links that predates the iterator) is
//! retained for callers but is now a thin wrapper over the same
//! rank-based traversal; the two independent code paths it used to
//! cross-check are covered instead by the rank/unrank bijection property
//! tests and the counting oracle in `tests/joingraph_props.rs`.

use crate::PlanSpace;
use plansample_bignum::Nat;
use plansample_memo::PlanNode;

/// A resumable cursor over a plan space, in rank order.
///
/// Created by [`PlanSpace::enumerate`] /
/// [`PlanSpace::enumerate_from`] (also exposed on
/// [`crate::PreparedQuery`]). Implements [`Iterator`]; `nth`-style skips
/// — including the standard [`Iterator::skip`] / [`Iterator::nth`]
/// adapters — jump by rank arithmetic rather than generating and
/// discarding plans, so `cursor.skip(1_000_000)` costs one big-integer
/// addition, not a million unrankings.
///
/// ```
/// use plansample::PreparedQuery;
/// use plansample_bignum::Nat;
/// use plansample_optimizer::OptimizerConfig;
///
/// let (catalog, _) = plansample_catalog::tpch::catalog();
/// let query = plansample_query::tpch::q6(&catalog);
/// let prepared = PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap();
///
/// // Page through the space three plans at a time, resuming by rank.
/// let page1: Vec<_> = prepared.enumerate_from(Nat::zero()).take(3).collect();
/// let mut cursor = prepared.enumerate_from(Nat::from(3u64));
/// let page2: Vec<_> = cursor.by_ref().take(3).collect();
/// assert_eq!(page1.len(), 3);
/// assert_ne!(page1, page2);
/// assert_eq!(cursor.next_rank(), &Nat::from(6u64));
/// ```
#[derive(Debug, Clone)]
pub struct PlanCursor<'a> {
    space: &'a PlanSpace,
    next: Nat,
}

impl<'a> PlanCursor<'a> {
    pub(crate) fn new(space: &'a PlanSpace, start: Nat) -> Self {
        PlanCursor { space, next: start }
    }

    /// The rank the next call to [`Iterator::next`] will produce, i.e.
    /// the cursor's current position. Equals `total()` once exhausted.
    pub fn next_rank(&self) -> &Nat {
        &self.next
    }

    /// Repositions the cursor to an absolute rank (forwards or
    /// backwards) in O(1).
    pub fn seek(&mut self, rank: Nat) {
        self.next = rank;
    }

    /// Returns up to `k` plans starting at the current position and
    /// advances past them — one page of results.
    pub fn next_page(&mut self, k: usize) -> Vec<PlanNode> {
        self.by_ref().take(k).collect()
    }
}

impl Iterator for PlanCursor<'_> {
    type Item = PlanNode;

    fn next(&mut self) -> Option<PlanNode> {
        if self.next >= *self.space.total() {
            // Clamp so `next_rank()`'s exhaustion invariant holds even
            // after an overshooting `nth`/`skip`/`seek`.
            self.next = self.space.total().clone();
            return None;
        }
        let plan = self
            .space
            .unrank(&self.next)
            .expect("ranks below the total are valid");
        self.next.incr();
        Some(plan)
    }

    fn nth(&mut self, n: usize) -> Option<PlanNode> {
        // Jump by rank arithmetic: skipping n plans costs one addition.
        self.next += &Nat::from(n as u64);
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .space
            .total()
            .checked_sub(&self.next)
            .unwrap_or_else(Nat::zero);
        match remaining.to_u64() {
            Some(r) if r <= usize::MAX as u64 => (r as usize, Some(r as usize)),
            _ => (usize::MAX, None),
        }
    }
}

impl PlanSpace {
    /// Streams every plan of the space in rank order.
    pub fn enumerate(&self) -> PlanCursor<'_> {
        self.enumerate_from(Nat::zero())
    }

    /// Streams plans in rank order starting at `rank` — the resumable
    /// entry point for paginating a space. A starting rank at or past
    /// `total()` yields an exhausted cursor (mirroring
    /// `enumerate().skip(rank)`), so pagination loops need no bounds
    /// bookkeeping.
    pub fn enumerate_from(&self, rank: Nat) -> PlanCursor<'_> {
        PlanCursor::new(self, rank)
    }

    /// Materializes the first `limit` plans of the space.
    ///
    /// Historical API: this was once an independent recursive enumerator
    /// used as an oracle against [`enumerate`](Self::enumerate); the two
    /// traversals are now consolidated on the rank-based cursor, and this
    /// wrapper survives for callers that want an eagerly collected,
    /// capped prefix.
    pub fn enumerate_recursive(&self, limit: usize) -> Vec<PlanNode> {
        self.enumerate().take(limit).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_memo::validate_plan;

    #[test]
    fn enumerate_produces_exactly_n_distinct_plans() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let plans: Vec<_> = space.enumerate().collect();
        assert_eq!(plans.len(), 32);
        let distinct: std::collections::HashSet<String> = plans
            .iter()
            .map(|p| format!("{:?}", p.preorder_ids()))
            .collect();
        assert_eq!(distinct.len(), 32);
        for p in &plans {
            assert!(validate_plan(&ex.memo, &ex.query, p).is_empty());
        }
    }

    #[test]
    fn enumerate_from_matches_skipping() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        for start in [0u64, 1, 13, 31, 32, 100] {
            let resumed: Vec<_> = space.enumerate_from(Nat::from(start)).collect();
            let skipped: Vec<_> = space.enumerate().skip(start as usize).collect();
            assert_eq!(resumed, skipped, "start {start}");
        }
    }

    #[test]
    fn cursor_nth_jumps_by_rank() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut cursor = space.enumerate();
        let plan = cursor.nth(13).unwrap();
        assert_eq!(space.rank(&plan).unwrap(), Nat::from(13u64));
        assert_eq!(cursor.next_rank(), &Nat::from(14u64));
        // `skip` routes through `nth`, so it jumps too.
        let mut skipped = space.enumerate().skip(31);
        let plan = skipped.next().unwrap();
        assert_eq!(space.rank(&plan).unwrap(), Nat::from(31u64));
        assert!(skipped.next().is_none());
        assert!(space.enumerate().nth(32).is_none());
    }

    #[test]
    fn cursor_pages_cover_the_space_without_overlap() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut cursor = space.enumerate();
        let mut all = Vec::new();
        loop {
            let page = cursor.next_page(10);
            if page.is_empty() {
                break;
            }
            all.extend(page);
        }
        assert_eq!(all, space.enumerate().collect::<Vec<_>>());
        assert_eq!(cursor.next_rank(), space.total());
    }

    #[test]
    fn cursor_seek_repositions() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut cursor = space.enumerate();
        cursor.seek(Nat::from(30u64));
        assert_eq!(cursor.by_ref().count(), 2);
        cursor.seek(Nat::zero());
        assert_eq!(cursor.size_hint(), (32, Some(32)));
    }

    #[test]
    fn limit_caps_recursive_enumeration() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        assert_eq!(space.enumerate_recursive(5).len(), 5);
        assert_eq!(space.enumerate_recursive(0).len(), 0);
        assert_eq!(space.enumerate_recursive(1000).len(), 32);
    }
}
