//! Query specifications: the declarative input to the optimizer.
//!
//! A [`QuerySpec`] is a single select-project-join block — relations
//! (table instances with aliases, so self-joins like TPC-H Q7's two
//! `nation` references work), equality join edges, per-relation filters,
//! and an optional aggregate on top. This mirrors what the paper's initial
//! logical plan encodes before it is copied into the MEMO (Figure 1).
//!
//! The crate also owns the *statistics view* of a query: filter and join
//! selectivities and the classic System-R cardinality estimate for any
//! subset of relations, which the optimizer's cost model consumes.

#![warn(missing_docs)]

mod builder;
mod card;
mod relset;
pub mod tpch;

pub use builder::{QueryBuilder, QueryError};
pub use relset::RelSet;

use plansample_catalog::{Catalog, Datum, TableId};

/// Index of a relation instance within one query (not a table id — the same
/// table may appear several times under different aliases).
///
/// Stored as a `u32` so a [`ColRef`] packs into 8 bytes: column
/// references appear in every join/scan operator of the MEMO, and their
/// size directly sets the per-expression memory footprint of a prepared
/// plan space (docs/DESIGN.md §6). Queries are limited to
/// [`RelSet::MAX_RELS`] = 64 relations anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a usize array index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one relation instance of the query.
#[derive(Debug, Clone)]
pub struct RelRef {
    /// Underlying table.
    pub table: TableId,
    /// Alias, unique within the query (defaults to the table name).
    pub alias: String,
}

/// A column of a relation instance. Packs into 8 bytes (two `u32`s) —
/// see [`RelId`] for why that matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Which relation instance.
    pub rel: RelId,
    /// Column ordinal within that relation's table.
    pub col: u32,
}

impl ColRef {
    /// The column ordinal as a usize array index.
    #[inline]
    pub fn col_idx(self) -> usize {
        self.col as usize
    }
}

/// Comparison operators for filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on concrete values.
    pub fn eval(&self, left: &Datum, right: &Datum) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// SQL spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with its operands swapped: `a op b` ⇔
    /// `b op.reversed() a`. The SQL parser uses this to normalize
    /// literal-first predicates (`5 < col`) onto the canonical
    /// `col op literal` filter shape.
    pub fn reversed(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// A single-relation predicate `col op literal`.
#[derive(Debug, Clone)]
pub struct Filter {
    /// Filtered column.
    pub col: ColRef,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Datum,
    /// Estimated fraction of rows that pass. Derived from NDVs for
    /// equality (`1/ndv`) and from the System-R magic constant (`1/3`) for
    /// ranges unless overridden by the query author.
    pub selectivity: f64,
}

/// An equality join predicate between two relation instances.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// Left column.
    pub left: ColRef,
    /// Right column.
    pub right: ColRef,
    /// Estimated selectivity `1 / max(ndv_left, ndv_right)`.
    pub selectivity: f64,
}

impl JoinEdge {
    /// The pair of relations this edge connects.
    pub fn rels(&self) -> (RelId, RelId) {
        (self.left.rel, self.right.rel)
    }

    /// `true` iff one endpoint is in `left` and the other in `right`.
    pub fn crosses(&self, left: RelSet, right: RelSet) -> bool {
        (left.contains(self.left.rel) && right.contains(self.right.rel))
            || (left.contains(self.right.rel) && right.contains(self.left.rel))
    }

    /// `true` iff both endpoints are within `set`.
    pub fn within(&self, set: RelSet) -> bool {
        set.contains(self.left.rel) && set.contains(self.right.rel)
    }
}

/// Aggregate functions supported by the block's optional aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `SUM(col)`
    Sum,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
    /// `AVG(col)`
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate expression, e.g. `SUM(l_extendedprice)`.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Its argument; `None` only for `COUNT(*)`.
    pub arg: Option<ColRef>,
}

/// Optional grouping/aggregation on top of the join block.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Group-by columns (possibly empty: scalar aggregate).
    pub group_by: Vec<ColRef>,
    /// Aggregate expressions.
    pub aggs: Vec<AggExpr>,
}

/// A complete single-block query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Relation instances.
    pub relations: Vec<RelRef>,
    /// Equality join predicates.
    pub join_edges: Vec<JoinEdge>,
    /// Single-relation filters.
    pub filters: Vec<Filter>,
    /// Optional aggregate on top.
    pub aggregate: Option<Aggregate>,
    /// Optional final projection; `None` means all columns in relation
    /// order (ignored when an aggregate is present — the aggregate defines
    /// the output).
    pub projection: Option<Vec<ColRef>>,
}

impl QuerySpec {
    /// Set of all relations in the query.
    pub fn all_rels(&self) -> RelSet {
        RelSet::all(self.relations.len())
    }

    /// Join edges fully contained in `set`.
    pub fn edges_within(&self, set: RelSet) -> impl Iterator<Item = &JoinEdge> {
        self.join_edges.iter().filter(move |e| e.within(set))
    }

    /// Join edges with one endpoint in `left` and the other in `right`.
    pub fn edges_crossing(&self, left: RelSet, right: RelSet) -> Vec<&JoinEdge> {
        self.join_edges
            .iter()
            .filter(|e| e.crosses(left, right))
            .collect()
    }

    /// Filters on relation `rel`.
    pub fn filters_on(&self, rel: RelId) -> impl Iterator<Item = &Filter> {
        self.filters.iter().filter(move |f| f.col.rel == rel)
    }

    /// `true` iff `set` induces a connected subgraph of the join graph
    /// (singletons are connected; the empty set is not).
    pub fn connected(&self, set: RelSet) -> bool {
        let Some(start) = set.iter().next() else {
            return false;
        };
        let mut reached = RelSet::singleton(start);
        loop {
            let mut next = RelSet::EMPTY;
            for edge in &self.join_edges {
                let (a, b) = edge.rels();
                if set.contains(a) && set.contains(b) {
                    if reached.contains(a) && !reached.contains(b) {
                        next.insert(b);
                    }
                    if reached.contains(b) && !reached.contains(a) {
                        next.insert(a);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            reached = reached.union(next);
        }
        reached == set
    }

    /// Resolves `alias.column` to a [`ColRef`].
    pub fn resolve(&self, catalog: &Catalog, alias: &str, column: &str) -> Option<ColRef> {
        let (i, rel) = self
            .relations
            .iter()
            .enumerate()
            .find(|(_, r)| r.alias == alias)?;
        let col = catalog.table(rel.table).column_index(column)?;
        Some(ColRef {
            rel: RelId(i as u32),
            col: col as u32,
        })
    }

    /// Human-readable name `alias.column` for diagnostics.
    pub fn col_name(&self, catalog: &Catalog, col: ColRef) -> String {
        let rel = &self.relations[col.rel.idx()];
        format!(
            "{}.{}",
            rel.alias,
            catalog.table(rel.table).column(col.col_idx()).name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::ColType;

    fn two_table_spec() -> (Catalog, QuerySpec) {
        let mut cat = Catalog::new();
        cat.add_table(
            plansample_catalog::table("a", 100)
                .col("x", ColType::Int, 100)
                .build(),
        )
        .unwrap();
        cat.add_table(
            plansample_catalog::table("b", 200)
                .col("y", ColType::Int, 50)
                .build(),
        )
        .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.join(("a", "x"), ("b", "y")).unwrap();
        let spec = qb.build().unwrap();
        (cat, spec)
    }

    #[test]
    fn cmp_op_eval() {
        use Datum::Int;
        assert!(CmpOp::Eq.eval(&Int(1), &Int(1)));
        assert!(CmpOp::Ne.eval(&Int(1), &Int(2)));
        assert!(CmpOp::Lt.eval(&Int(1), &Int(2)));
        assert!(CmpOp::Le.eval(&Int(2), &Int(2)));
        assert!(CmpOp::Gt.eval(&Int(3), &Int(2)));
        assert!(CmpOp::Ge.eval(&Int(2), &Int(2)));
        assert!(!CmpOp::Lt.eval(&Int(2), &Int(2)));
        assert_eq!(CmpOp::Le.symbol(), "<=");
    }

    #[test]
    fn edge_crossing_and_within() {
        let (_cat, spec) = two_table_spec();
        let e = &spec.join_edges[0];
        let a = RelSet::singleton(RelId(0));
        let b = RelSet::singleton(RelId(1));
        assert!(e.crosses(a, b));
        assert!(e.crosses(b, a));
        assert!(!e.within(a));
        assert!(e.within(a.union(b)));
    }

    #[test]
    fn connectivity() {
        let (_cat, spec) = two_table_spec();
        assert!(spec.connected(RelSet::all(2)));
        assert!(spec.connected(RelSet::singleton(RelId(0))));
        assert!(!spec.connected(RelSet::EMPTY));
    }

    #[test]
    fn resolve_and_names() {
        let (cat, spec) = two_table_spec();
        let c = spec.resolve(&cat, "b", "y").unwrap();
        assert_eq!(
            c,
            ColRef {
                rel: RelId(1),
                col: 0
            }
        );
        assert_eq!(spec.col_name(&cat, c), "b.y");
        assert!(spec.resolve(&cat, "z", "y").is_none());
        assert!(spec.resolve(&cat, "b", "nope").is_none());
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::Sum.name(), "SUM");
        assert_eq!(AggFunc::CountStar.name(), "COUNT");
    }
}
