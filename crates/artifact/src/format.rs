//! The on-disk artifact format (docs/DESIGN.md §10).
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "PSARTFCT"
//! 8       4     format version (u32 LE)           — bump on any change
//! 12      4     flags (u32 LE, reserved, 0)
//! 16      8     whole-file checksum over bytes[32..]
//! 24      4     section count (u32 LE)
//! 28      4     reserved (0)
//! 32      32×n  section table: kind u32, reserved u32,
//!               offset u64, len u64, checksum u64
//! ...           section payloads, each starting 8-aligned
//! ```
//!
//! Sections are self-describing slices; every payload starts on an
//! 8-byte *file* offset, so in-section alignment (see `crate::codec`)
//! is file alignment and the flat `u32`/`u64`/limb tables reload with
//! one allocation and a straight chunked copy each.
//!
//! Decode validation order is part of the contract (the fault-injection
//! suite pins it): length → magic → version → section-table bounds →
//! whole-file checksum → per-section checksums → per-section structural
//! decode. A zero-length or cut-short file is [`Truncated`]; a section
//! table pointing past EOF is [`Truncated`] (caught *before* any
//! checksum, so the nature of the damage — not its side effects on the
//! checksum — names the error); a bit flip anywhere after the header is
//! [`ChecksumMismatch`].
//!
//! Compatibility policy: readers accept exactly [`FORMAT_VERSION`].
//! Unknown section kinds are *tolerated* (skipped), so a future minor
//! revision may append sections without a version bump; any change to
//! an existing section's layout bumps the version, and old artifacts
//! are re-prepared rather than migrated — they are caches, not data.
//!
//! [`Truncated`]: ArtifactError::Truncated
//! [`ChecksumMismatch`]: ArtifactError::ChecksumMismatch

use crate::codec::{Reader, Writer};
use crate::{checksum, ArtifactError};
use plansample_bignum::Nat;
use plansample_catalog::{Datum, TableId};
use plansample_core::{cache_key, Counts, Links, LinksParts, PlanSpace, PreparedQuery};
use plansample_memo::{
    GroupId, GroupKey, LogicalOp, Memo, PhysId, PhysicalExpr, PhysicalOp, PlanNode, SortOrder,
};
use plansample_optimizer::{CostModel, Explorer, OptimizerConfig};
use plansample_query::{
    AggExpr, AggFunc, Aggregate, CmpOp, ColRef, Filter, JoinEdge, QuerySpec, RelId, RelRef, RelSet,
};
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// First eight bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"PSARTFCT";

/// The one format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size (magic through reserved).
const HEADER_LEN: usize = 32;

/// Bytes per section-table entry.
const ENTRY_LEN: usize = 32;

/// Sanity cap on the declared section count: far above anything the
/// writer produces, low enough that a hostile count cannot drive a
/// large allocation.
const MAX_SECTIONS: u32 = 256;

/// Section kinds, by table order. Values are stable wire constants.
const SEC_META: u32 = 1;
const SEC_QUERY: u32 = 2;
const SEC_CONFIG: u32 = 3;
const SEC_MEMO: u32 = 4;
const SEC_LINKS: u32 = 5;
const SEC_COUNTS: u32 = 6;
const SEC_BEST: u32 = 7;

fn section_name(kind: u32) -> &'static str {
    match kind {
        SEC_META => "meta",
        SEC_QUERY => "query",
        SEC_CONFIG => "config",
        SEC_MEMO => "memo",
        SEC_LINKS => "links",
        SEC_COUNTS => "counts",
        SEC_BEST => "best",
        _ => "unknown",
    }
}

fn malformed(reason: impl Into<String>) -> ArtifactError {
    ArtifactError::Malformed {
        reason: reason.into(),
    }
}

fn truncated(detail: impl Into<String>) -> ArtifactError {
    ArtifactError::Truncated {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serializes a prepared query into a self-contained artifact image.
pub fn encode(prepared: &PreparedQuery) -> Vec<u8> {
    let sections: Vec<(u32, Vec<u8>)> = vec![
        (SEC_META, encode_meta(prepared)),
        (SEC_QUERY, encode_query(prepared.query())),
        (SEC_CONFIG, encode_config(prepared.config())),
        (SEC_MEMO, encode_memo(prepared.memo())),
        (SEC_LINKS, encode_links(prepared.space().links())),
        (SEC_COUNTS, encode_counts(prepared.space().counts())),
        (SEC_BEST, encode_best(prepared)),
    ];

    // Lay out payloads: 8-aligned offsets after header + table.
    let table_end = HEADER_LEN + sections.len() * ENTRY_LEN;
    let mut offset = table_end;
    let mut entries = Vec::with_capacity(sections.len());
    for (kind, payload) in &sections {
        offset = (offset + 7) & !7;
        entries.push((
            *kind,
            offset as u64,
            payload.len() as u64,
            checksum(payload),
        ));
        offset += payload.len();
    }
    let total = offset;

    let mut out = vec![0u8; total];
    out[0..8].copy_from_slice(&MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // flags [12..16) and reserved [28..32) stay zero.
    out[24..28].copy_from_slice(&(sections.len() as u32).to_le_bytes());
    for (i, (kind, off, len, sum)) in entries.iter().enumerate() {
        let e = HEADER_LEN + i * ENTRY_LEN;
        out[e..e + 4].copy_from_slice(&kind.to_le_bytes());
        out[e + 8..e + 16].copy_from_slice(&off.to_le_bytes());
        out[e + 16..e + 24].copy_from_slice(&len.to_le_bytes());
        out[e + 24..e + 32].copy_from_slice(&sum.to_le_bytes());
    }
    for ((_, payload), (_, off, _, _)) in sections.iter().zip(&entries) {
        let off = *off as usize;
        out[off..off + payload.len()].copy_from_slice(payload);
    }
    let file_sum = checksum(&out[HEADER_LEN..]);
    out[16..24].copy_from_slice(&file_sum.to_le_bytes());
    out
}

/// Encodes and writes atomically: the bytes go to a hidden temp file in
/// `path`'s directory, then a `rename` publishes them — a reader (or a
/// crash) never observes a half-written artifact. Returns the byte
/// count written.
pub fn save(prepared: &PreparedQuery, path: &Path) -> Result<u64, ArtifactError> {
    let bytes = encode(prepared);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let tmp = dir.join(format!(".{stem}.tmp-{}", std::process::id()));
    if let Err(e) = fs::write(&tmp, &bytes) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(bytes.len() as u64)
}

/// Reads and decodes one artifact file.
pub fn load(path: &Path) -> Result<PreparedQuery, ArtifactError> {
    decode(&fs::read(path)?)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct SectionRef<'a> {
    kind: u32,
    offset: u64,
    bytes: &'a [u8],
    sum: u64,
}

/// Parses the header and section table and verifies every checksum —
/// the shared front half of [`decode`] and [`inspect`]. Validation
/// order per the module docs.
fn parse_sections(bytes: &[u8]) -> Result<(u32, Vec<SectionRef<'_>>), ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(truncated(format!(
            "file is {} bytes, the header alone is {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[0..8] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let le32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let le64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let version = le32(8);
    if version != FORMAT_VERSION {
        return Err(ArtifactError::VersionMismatch { found: version });
    }
    let flags = le32(12);
    let file_sum = le64(16);
    let count = le32(24);
    if count > MAX_SECTIONS {
        return Err(malformed(format!("section count {count} exceeds the cap")));
    }
    let table_end = HEADER_LEN + count as usize * ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(truncated(format!(
            "section table needs {table_end} bytes, file has {}",
            bytes.len()
        )));
    }
    let mut sections = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let e = HEADER_LEN + i * ENTRY_LEN;
        let kind = le32(e);
        let offset = le64(e + 8);
        let len = le64(e + 16);
        let sum = le64(e + 24);
        let end = offset.checked_add(len).ok_or_else(|| {
            truncated(format!(
                "section {} offset+len overflows",
                section_name(kind)
            ))
        })?;
        if offset < table_end as u64 || end > bytes.len() as u64 {
            return Err(truncated(format!(
                "section table points past EOF ({} at {offset}+{len}, file is {} bytes)",
                section_name(kind),
                bytes.len()
            )));
        }
        sections.push(SectionRef {
            kind,
            offset,
            bytes: &bytes[offset as usize..end as usize],
            sum,
        });
    }
    if checksum(&bytes[HEADER_LEN..]) != file_sum {
        return Err(ArtifactError::ChecksumMismatch { section: "file" });
    }
    for s in &sections {
        if checksum(s.bytes) != s.sum {
            return Err(ArtifactError::ChecksumMismatch {
                section: section_name(s.kind),
            });
        }
    }
    Ok((flags, sections))
}

fn required<'a, 'b>(
    sections: &'b [SectionRef<'a>],
    kind: u32,
) -> Result<&'b SectionRef<'a>, ArtifactError> {
    let mut found = None;
    for s in sections.iter().filter(|s| s.kind == kind) {
        if found.is_some() {
            return Err(malformed(format!(
                "duplicate {} section",
                section_name(kind)
            )));
        }
        found = Some(s);
    }
    found.ok_or_else(|| malformed(format!("missing {} section", section_name(kind))))
}

/// Decodes an artifact image back into a [`PreparedQuery`], validating
/// integrity (checksums), structure (every table invariant), and
/// identity (the stored fingerprint must equal the fingerprint
/// recomputed from the decoded content).
pub fn decode(bytes: &[u8]) -> Result<PreparedQuery, ArtifactError> {
    let (_, sections) = parse_sections(bytes)?;

    let fingerprint = decode_meta(required(&sections, SEC_META)?.bytes)?;
    let query = Arc::new(decode_query(required(&sections, SEC_QUERY)?.bytes)?);
    let config = decode_config(required(&sections, SEC_CONFIG)?.bytes)?;
    let memo = Arc::new(decode_memo(required(&sections, SEC_MEMO)?.bytes)?);
    let link_parts = decode_links(required(&sections, SEC_LINKS)?.bytes)?;
    let links = Links::from_parts(&memo, link_parts)?;
    let (per_expr, list_totals) = decode_counts(required(&sections, SEC_COUNTS)?.bytes)?;
    let counts = Counts::from_parts(&links, per_expr, list_totals)?;
    let space = PlanSpace::from_parts(memo, query, links, counts)?;
    let (best_plan, best_cost) = decode_best(required(&sections, SEC_BEST)?.bytes)?;
    let prepared = PreparedQuery::from_parts(space, best_plan, best_cost, config)?;

    // Identity: a mislabeled artifact (edited content under an old
    // fingerprint) must not impersonate another query's plan space.
    if cache_key(prepared.query(), prepared.config()) != fingerprint {
        return Err(malformed(
            "stored fingerprint does not match the decoded query + config",
        ));
    }
    Ok(prepared)
}

/// One section-table row, as reported by [`inspect`].
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section name (`"memo"`, `"links"`, …; `"unknown"` for kinds this
    /// build does not know).
    pub name: &'static str,
    /// Byte offset of the payload in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Stored (and verified) payload checksum.
    pub checksum: u64,
}

/// Header-level description of an artifact: what [`inspect`] returns.
#[derive(Debug, Clone)]
pub struct Inspection {
    /// Declared format version.
    pub version: u32,
    /// Header flags.
    pub flags: u32,
    /// Whole-file size in bytes.
    pub total_bytes: u64,
    /// The query + config fingerprint the artifact was saved under.
    pub fingerprint: String,
    /// The section table, in file order.
    pub sections: Vec<SectionInfo>,
}

/// Verifies integrity (header, bounds, every checksum) and reports the
/// section-level byte breakdown *without* decoding the plan space —
/// cheap enough to run over a whole store.
pub fn inspect(bytes: &[u8]) -> Result<Inspection, ArtifactError> {
    let (flags, sections) = parse_sections(bytes)?;
    let fingerprint = decode_meta(required(&sections, SEC_META)?.bytes)?;
    Ok(Inspection {
        version: FORMAT_VERSION,
        flags,
        total_bytes: bytes.len() as u64,
        fingerprint,
        sections: sections
            .iter()
            .map(|s| SectionInfo {
                name: section_name(s.kind),
                offset: s.offset,
                len: s.bytes.len() as u64,
                checksum: s.sum,
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------
// META
// ---------------------------------------------------------------------

fn encode_meta(prepared: &PreparedQuery) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&cache_key(prepared.query(), prepared.config()));
    w.u64(prepared.memo().num_groups() as u64);
    w.u64(prepared.memo().num_physical() as u64);
    w.into_inner()
}

fn decode_meta(bytes: &[u8]) -> Result<String, ArtifactError> {
    let mut r = Reader::new(bytes);
    let fingerprint = r.str()?;
    let _groups = r.u64()?;
    let _exprs = r.u64()?;
    r.finish()?;
    Ok(fingerprint)
}

// ---------------------------------------------------------------------
// QUERY
// ---------------------------------------------------------------------

fn write_colref(w: &mut Writer, c: ColRef) {
    w.u32(c.rel.0);
    w.u32(c.col);
}

fn read_colref(r: &mut Reader<'_>) -> Result<ColRef, ArtifactError> {
    Ok(ColRef {
        rel: RelId(r.u32()?),
        col: r.u32()?,
    })
}

fn write_datum(w: &mut Writer, d: &Datum) {
    match d {
        Datum::Null => w.u8(0),
        Datum::Int(v) => {
            w.u8(1);
            w.i64(*v);
        }
        Datum::Float(v) => {
            w.u8(2);
            w.f64(*v);
        }
        Datum::Str(s) => {
            w.u8(3);
            w.str(s);
        }
    }
}

fn read_datum(r: &mut Reader<'_>) -> Result<Datum, ArtifactError> {
    Ok(match r.u8()? {
        0 => Datum::Null,
        1 => Datum::Int(r.i64()?),
        2 => Datum::Float(r.f64()?),
        3 => Datum::Str(r.str()?),
        t => return Err(malformed(format!("unknown datum tag {t}"))),
    })
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from(tag: u8) -> Result<CmpOp, ArtifactError> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(malformed(format!("unknown comparison tag {t}"))),
    })
}

fn agg_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::CountStar => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn agg_from(tag: u8) -> Result<AggFunc, ArtifactError> {
    Ok(match tag {
        0 => AggFunc::CountStar,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        t => return Err(malformed(format!("unknown aggregate tag {t}"))),
    })
}

fn encode_query(q: &QuerySpec) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(q.relations.len() as u32);
    for rel in &q.relations {
        w.u32(rel.table.0);
        w.str(&rel.alias);
    }
    w.u32(q.join_edges.len() as u32);
    for e in &q.join_edges {
        write_colref(&mut w, e.left);
        write_colref(&mut w, e.right);
        w.f64(e.selectivity);
    }
    w.u32(q.filters.len() as u32);
    for f in &q.filters {
        write_colref(&mut w, f.col);
        w.u8(cmp_tag(f.op));
        write_datum(&mut w, &f.value);
        w.f64(f.selectivity);
    }
    match &q.aggregate {
        None => w.u8(0),
        Some(agg) => {
            w.u8(1);
            w.u32(agg.group_by.len() as u32);
            for &c in &agg.group_by {
                write_colref(&mut w, c);
            }
            w.u32(agg.aggs.len() as u32);
            for a in &agg.aggs {
                w.u8(agg_tag(a.func));
                match a.arg {
                    None => w.u8(0),
                    Some(c) => {
                        w.u8(1);
                        write_colref(&mut w, c);
                    }
                }
            }
        }
    }
    match &q.projection {
        None => w.u8(0),
        Some(cols) => {
            w.u8(1);
            w.u32(cols.len() as u32);
            for &c in cols {
                write_colref(&mut w, c);
            }
        }
    }
    w.into_inner()
}

fn read_bool(r: &mut Reader<'_>, what: &str) -> Result<bool, ArtifactError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(malformed(format!("{what} flag must be 0 or 1, got {t}"))),
    }
}

fn decode_query(bytes: &[u8]) -> Result<QuerySpec, ArtifactError> {
    let mut r = Reader::new(bytes);
    let nrels = r.u32()?;
    let mut relations = Vec::new();
    for _ in 0..nrels {
        relations.push(RelRef {
            table: TableId(r.u32()?),
            alias: r.str()?,
        });
    }
    let nedges = r.u32()?;
    let mut join_edges = Vec::new();
    for _ in 0..nedges {
        join_edges.push(JoinEdge {
            left: read_colref(&mut r)?,
            right: read_colref(&mut r)?,
            selectivity: r.f64()?,
        });
    }
    let nfilters = r.u32()?;
    let mut filters = Vec::new();
    for _ in 0..nfilters {
        filters.push(Filter {
            col: read_colref(&mut r)?,
            op: cmp_from(r.u8()?)?,
            value: read_datum(&mut r)?,
            selectivity: r.f64()?,
        });
    }
    let aggregate = if read_bool(&mut r, "aggregate")? {
        let ngroup = r.u32()?;
        let mut group_by = Vec::new();
        for _ in 0..ngroup {
            group_by.push(read_colref(&mut r)?);
        }
        let naggs = r.u32()?;
        let mut aggs = Vec::new();
        for _ in 0..naggs {
            let func = agg_from(r.u8()?)?;
            let arg = if read_bool(&mut r, "aggregate argument")? {
                Some(read_colref(&mut r)?)
            } else {
                None
            };
            aggs.push(AggExpr { func, arg });
        }
        Some(Aggregate { group_by, aggs })
    } else {
        None
    };
    let projection = if read_bool(&mut r, "projection")? {
        let n = r.u32()?;
        let mut cols = Vec::new();
        for _ in 0..n {
            cols.push(read_colref(&mut r)?);
        }
        Some(cols)
    } else {
        None
    };
    r.finish()?;
    Ok(QuerySpec {
        relations,
        join_edges,
        filters,
        aggregate,
        projection,
    })
}

// ---------------------------------------------------------------------
// CONFIG
// ---------------------------------------------------------------------

fn encode_config(c: &OptimizerConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(c.allow_cross_products as u8);
    w.u8(match c.explorer {
        Explorer::BottomUp => 0,
        Explorer::Transform => 1,
    });
    w.u8(c.enable_merge_joins as u8);
    w.u8(c.enable_index_scans as u8);
    w.u8(c.enable_enforcers as u8);
    let m = &c.cost_model;
    for v in [
        m.seq_row,
        m.idx_row,
        m.sort_factor,
        m.hash_build_row,
        m.hash_probe_row,
        m.merge_row,
        m.nlj_pair,
        m.stream_agg_row,
    ] {
        w.f64(v);
    }
    w.into_inner()
}

fn decode_config(bytes: &[u8]) -> Result<OptimizerConfig, ArtifactError> {
    let mut r = Reader::new(bytes);
    let allow_cross_products = read_bool(&mut r, "cross products")?;
    let explorer = match r.u8()? {
        0 => Explorer::BottomUp,
        1 => Explorer::Transform,
        t => return Err(malformed(format!("unknown explorer tag {t}"))),
    };
    let enable_merge_joins = read_bool(&mut r, "merge joins")?;
    let enable_index_scans = read_bool(&mut r, "index scans")?;
    let enable_enforcers = read_bool(&mut r, "enforcers")?;
    let mut vals = [0.0f64; 8];
    for v in &mut vals {
        *v = r.f64()?;
    }
    r.finish()?;
    Ok(OptimizerConfig {
        allow_cross_products,
        explorer,
        enable_merge_joins,
        enable_index_scans,
        enable_enforcers,
        cost_model: CostModel {
            seq_row: vals[0],
            idx_row: vals[1],
            sort_factor: vals[2],
            hash_build_row: vals[3],
            hash_probe_row: vals[4],
            merge_row: vals[5],
            nlj_pair: vals[6],
            stream_agg_row: vals[7],
        },
    })
}

// ---------------------------------------------------------------------
// MEMO
// ---------------------------------------------------------------------

fn write_sort_order(w: &mut Writer, order: &SortOrder) {
    let cols = order.cols();
    w.u32(cols.len() as u32);
    for &c in cols {
        write_colref(w, c);
    }
}

fn read_sort_order(r: &mut Reader<'_>) -> Result<SortOrder, ArtifactError> {
    let n = r.u32()?;
    let mut cols = Vec::new();
    for _ in 0..n {
        cols.push(read_colref(r)?);
    }
    Ok(SortOrder::on(cols))
}

fn encode_memo(memo: &Memo) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(memo.root().0);
    w.u32(memo.num_groups() as u32);
    for group in memo.groups() {
        match group.key {
            GroupKey::Rels(set) => {
                w.u8(0);
                w.u64(set.mask());
            }
            GroupKey::Agg => w.u8(1),
        }
        w.u32(group.logical.len() as u32);
        for op in &group.logical {
            match op {
                LogicalOp::Scan { rel } => {
                    w.u8(0);
                    w.u32(rel.0);
                }
                LogicalOp::Join { left, right } => {
                    w.u8(1);
                    w.u32(left.0);
                    w.u32(right.0);
                }
                LogicalOp::Agg { input } => {
                    w.u8(2);
                    w.u32(input.0);
                }
            }
        }
        w.u32(group.physical.len() as u32);
        for expr in &group.physical {
            match &expr.op {
                PhysicalOp::TableScan { rel } => {
                    w.u8(0);
                    w.u32(rel.0);
                }
                PhysicalOp::SortedIdxScan { rel, col } => {
                    w.u8(1);
                    w.u32(rel.0);
                    write_colref(&mut w, *col);
                }
                PhysicalOp::Sort { target } => {
                    w.u8(2);
                    write_sort_order(&mut w, target);
                }
                PhysicalOp::NestedLoopJoin { left, right } => {
                    w.u8(3);
                    w.u32(left.0);
                    w.u32(right.0);
                }
                PhysicalOp::HashJoin { left, right } => {
                    w.u8(4);
                    w.u32(left.0);
                    w.u32(right.0);
                }
                PhysicalOp::MergeJoin {
                    left,
                    right,
                    left_key,
                    right_key,
                } => {
                    w.u8(5);
                    w.u32(left.0);
                    w.u32(right.0);
                    write_colref(&mut w, *left_key);
                    write_colref(&mut w, *right_key);
                }
                PhysicalOp::HashAgg { input } => {
                    w.u8(6);
                    w.u32(input.0);
                }
                PhysicalOp::StreamAgg { input, group_order } => {
                    w.u8(7);
                    w.u32(input.0);
                    write_sort_order(&mut w, group_order);
                }
            }
            w.f64(expr.local_cost);
            w.f64(expr.out_card);
        }
    }
    w.into_inner()
}

fn relset_from_mask(mask: u64) -> RelSet {
    (0..64)
        .filter(|i| mask >> i & 1 == 1)
        .map(|i| RelId(i as u32))
        .collect()
}

fn decode_memo(bytes: &[u8]) -> Result<Memo, ArtifactError> {
    let mut r = Reader::new(bytes);
    let root = r.u32()?;
    let ngroups = r.u32()?;
    let mut parts = Vec::new();
    for _ in 0..ngroups {
        let key = match r.u8()? {
            0 => GroupKey::Rels(relset_from_mask(r.u64()?)),
            1 => GroupKey::Agg,
            t => return Err(malformed(format!("unknown group-key tag {t}"))),
        };
        let nlogical = r.u32()?;
        let mut logical = Vec::new();
        for _ in 0..nlogical {
            logical.push(match r.u8()? {
                0 => LogicalOp::Scan {
                    rel: RelId(r.u32()?),
                },
                1 => LogicalOp::Join {
                    left: GroupId(r.u32()?),
                    right: GroupId(r.u32()?),
                },
                2 => LogicalOp::Agg {
                    input: GroupId(r.u32()?),
                },
                t => return Err(malformed(format!("unknown logical-op tag {t}"))),
            });
        }
        let nphysical = r.u32()?;
        let mut physical = Vec::new();
        for _ in 0..nphysical {
            let op = match r.u8()? {
                0 => PhysicalOp::TableScan {
                    rel: RelId(r.u32()?),
                },
                1 => PhysicalOp::SortedIdxScan {
                    rel: RelId(r.u32()?),
                    col: read_colref(&mut r)?,
                },
                2 => PhysicalOp::Sort {
                    target: read_sort_order(&mut r)?,
                },
                3 => PhysicalOp::NestedLoopJoin {
                    left: GroupId(r.u32()?),
                    right: GroupId(r.u32()?),
                },
                4 => PhysicalOp::HashJoin {
                    left: GroupId(r.u32()?),
                    right: GroupId(r.u32()?),
                },
                5 => PhysicalOp::MergeJoin {
                    left: GroupId(r.u32()?),
                    right: GroupId(r.u32()?),
                    left_key: read_colref(&mut r)?,
                    right_key: read_colref(&mut r)?,
                },
                6 => PhysicalOp::HashAgg {
                    input: GroupId(r.u32()?),
                },
                7 => PhysicalOp::StreamAgg {
                    input: GroupId(r.u32()?),
                    group_order: read_sort_order(&mut r)?,
                },
                t => return Err(malformed(format!("unknown physical-op tag {t}"))),
            };
            let local_cost = r.f64()?;
            let out_card = r.f64()?;
            physical.push(PhysicalExpr::new(op, local_cost, out_card));
        }
        parts.push((key, logical, physical));
    }
    r.finish()?;
    Memo::from_parts(parts, root).map_err(malformed)
}

// ---------------------------------------------------------------------
// LINKS (the bulk CSR tables)
// ---------------------------------------------------------------------

fn encode_links(links: &Links) -> Vec<u8> {
    let parts = links.to_parts();
    let mut w = Writer::new();
    w.u32(parts.root_list);
    w.u32_slice(&parts.pool);
    w.u32_slice(&parts.list_bounds);
    w.u32_slice(&parts.slot_lists);
    w.u32_slice(&parts.slot_bounds);
    w.u32_slice(&parts.topo);
    w.into_inner()
}

fn decode_links(bytes: &[u8]) -> Result<LinksParts, ArtifactError> {
    let mut r = Reader::new(bytes);
    let root_list = r.u32()?;
    let pool = r.u32_vec()?;
    let list_bounds = r.u32_vec()?;
    let slot_lists = r.u32_vec()?;
    let slot_bounds = r.u32_vec()?;
    let topo = r.u32_vec()?;
    r.finish()?;
    Ok(LinksParts {
        pool,
        list_bounds,
        slot_lists,
        slot_bounds,
        topo,
        root_list,
    })
}

// ---------------------------------------------------------------------
// COUNTS (Nat limb pools)
// ---------------------------------------------------------------------

/// A `&[Nat]` as one limb pool plus an offset table — the bulk layout
/// (most counts are single-limb, so per-value length prefixes would
/// double the size and kill the chunked copy).
fn write_nats(w: &mut Writer, nats: &[Nat]) {
    let mut offsets = Vec::with_capacity(nats.len() + 1);
    let mut pool: Vec<u64> = Vec::new();
    offsets.push(0);
    for n in nats {
        pool.extend_from_slice(n.limbs());
        offsets.push(pool.len() as u32);
    }
    w.u32_slice(&offsets);
    w.u64_slice(&pool);
}

fn read_nats(r: &mut Reader<'_>) -> Result<Vec<Nat>, ArtifactError> {
    let offsets = r.u32_vec()?;
    let pool = r.u64_vec()?;
    if offsets.first() != Some(&0) {
        return Err(malformed("count offsets must start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(malformed("count offsets must be monotonic"));
    }
    if *offsets.last().unwrap() as usize != pool.len() {
        return Err(malformed("count offsets must end at the limb pool"));
    }
    Ok(offsets
        .windows(2)
        .map(|w| {
            let limbs = &pool[w[0] as usize..w[1] as usize];
            // `from_limbs` re-normalizes, so a pool slice with trailing
            // zero limbs still yields the canonical representation.
            match limbs {
                [] => Nat::zero(),
                [one] => Nat::from(*one),
                many => Nat::from_limbs(many.to_vec()),
            }
        })
        .collect())
}

fn encode_counts(counts: &Counts) -> Vec<u8> {
    let mut w = Writer::new();
    write_nats(&mut w, counts.per_expr());
    write_nats(&mut w, counts.list_totals());
    w.into_inner()
}

#[allow(clippy::type_complexity)]
fn decode_counts(bytes: &[u8]) -> Result<(Vec<Nat>, Vec<Nat>), ArtifactError> {
    let mut r = Reader::new(bytes);
    let per_expr = read_nats(&mut r)?;
    let list_totals = read_nats(&mut r)?;
    r.finish()?;
    Ok((per_expr, list_totals))
}

// ---------------------------------------------------------------------
// BEST (the optimizer's chosen plan)
// ---------------------------------------------------------------------

fn encode_best(prepared: &PreparedQuery) -> Vec<u8> {
    let (plan, cost) = prepared.best();
    let mut w = Writer::new();
    w.f64(cost);
    let mut nodes = Vec::new();
    preorder(plan, &mut nodes);
    w.u32(nodes.len() as u32);
    for (id, nchildren) in nodes {
        w.u32(id.group.0);
        w.u32(id.index as u32);
        w.u32(nchildren as u32);
    }
    w.into_inner()
}

fn preorder(node: &PlanNode, out: &mut Vec<(PhysId, usize)>) {
    out.push((node.id, node.children.len()));
    for child in &node.children {
        preorder(child, out);
    }
}

fn decode_best(bytes: &[u8]) -> Result<(PlanNode, f64), ArtifactError> {
    let mut r = Reader::new(bytes);
    let cost = r.f64()?;
    let count = r.u32()? as usize;
    if count == 0 {
        return Err(malformed("best plan must have at least one node"));
    }
    // Rebuild the preorder iteratively: recursion depth would otherwise
    // be attacker-controlled (a long chain of single-child nodes).
    let read_node = |r: &mut Reader<'_>| -> Result<(PlanNode, usize), ArtifactError> {
        let group = GroupId(r.u32()?);
        let index = r.u32()? as usize;
        let nchildren = r.u32()? as usize;
        Ok((
            PlanNode {
                id: PhysId { group, index },
                children: Vec::new(),
            },
            nchildren,
        ))
    };
    let mut consumed = 1usize;
    let (root, root_pending) = read_node(&mut r)?;
    let mut stack: Vec<(PlanNode, usize)> = vec![(root, root_pending)];
    let finished = loop {
        let &(_, pending) = stack.last().expect("stack starts non-empty");
        if pending == 0 {
            let (node, _) = stack.pop().expect("checked non-empty");
            match stack.last_mut() {
                Some((parent, parent_pending)) => {
                    parent.children.push(node);
                    *parent_pending -= 1;
                }
                None => break node,
            }
        } else {
            if consumed == count {
                return Err(malformed("best plan declares more children than nodes"));
            }
            consumed += 1;
            let (node, nchildren) = read_node(&mut r)?;
            stack.push((node, nchildren));
        }
    };
    if consumed != count {
        return Err(malformed("best plan has unreachable trailing nodes"));
    }
    r.finish()?;
    Ok((finished, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_optimizer::OptimizerConfig;

    fn prepared(sql_cross: bool) -> PreparedQuery {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let query = plansample_query::tpch::q5(&catalog);
        let config = if sql_cross {
            OptimizerConfig::with_cross_products()
        } else {
            OptimizerConfig::default()
        };
        PreparedQuery::prepare(&catalog, &query, &config).expect("q5 optimizes")
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let original = prepared(false);
        let bytes = encode(&original);
        let loaded = decode(&bytes).expect("decodes");
        assert_eq!(loaded.total(), original.total());
        assert_eq!(loaded.best().1.to_bits(), original.best().1.to_bits());
        assert_eq!(
            format!("{:?}", loaded.best().0),
            format!("{:?}", original.best().0)
        );
        let rank = plansample_bignum::Nat::from(12345u64);
        assert_eq!(
            format!("{:?}", loaded.unrank(&rank).unwrap()),
            format!("{:?}", original.unrank(&rank).unwrap()),
        );
        // Re-encoding the loaded artifact reproduces the byte image.
        assert_eq!(encode(&loaded), bytes, "encode is deterministic");
    }

    #[test]
    fn header_fields_are_where_the_spec_says() {
        let bytes = encode(&prepared(false));
        assert_eq!(&bytes[0..8], &MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            FORMAT_VERSION
        );
        let count = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        assert_eq!(count, 7, "seven sections");
        // Every section offset is 8-aligned.
        for i in 0..count as usize {
            let e = HEADER_LEN + i * ENTRY_LEN;
            let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap());
            assert_eq!(offset % 8, 0, "section {i} misaligned at {offset}");
        }
    }

    #[test]
    fn inspect_reports_the_section_breakdown() {
        let bytes = encode(&prepared(false));
        let info = inspect(&bytes).expect("inspects");
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.total_bytes, bytes.len() as u64);
        let names: Vec<&str> = info.sections.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["meta", "query", "config", "memo", "links", "counts", "best"]
        );
        let sum: u64 = info.sections.iter().map(|s| s.len).sum();
        assert!(sum <= info.total_bytes);
        assert!(!info.fingerprint.is_empty());
    }

    #[test]
    fn unknown_trailing_section_is_tolerated() {
        // Forward compatibility: a reader may skip section kinds it does
        // not know. Append a fake section and fix up the checksums.
        let mut bytes = encode(&prepared(false));
        let count = u32::from_le_bytes(bytes[24..28].try_into().unwrap()) as usize;
        // Move payloads is complex; instead append the new section's
        // payload at EOF and splice a fresh table entry before the first
        // payload... simpler: rebuild with an extra zero-length section
        // whose offset points at EOF.
        let table_end = HEADER_LEN + count * ENTRY_LEN;
        let mut entry = Vec::new();
        entry.extend_from_slice(&999u32.to_le_bytes());
        entry.extend_from_slice(&0u32.to_le_bytes());
        entry.extend_from_slice(&((bytes.len() + ENTRY_LEN) as u64).to_le_bytes());
        entry.extend_from_slice(&0u64.to_le_bytes());
        entry.extend_from_slice(&checksum(&[]).to_le_bytes());
        let mut rebuilt = Vec::new();
        rebuilt.extend_from_slice(&bytes[..table_end]);
        rebuilt.extend_from_slice(&entry);
        rebuilt.extend_from_slice(&bytes[table_end..]);
        rebuilt[24..28].copy_from_slice(&((count + 1) as u32).to_le_bytes());
        // Old offsets all moved by ENTRY_LEN; fix the original entries.
        for i in 0..count {
            let e = HEADER_LEN + i * ENTRY_LEN;
            let off = u64::from_le_bytes(rebuilt[e + 8..e + 16].try_into().unwrap());
            rebuilt[e + 8..e + 16].copy_from_slice(&(off + ENTRY_LEN as u64).to_le_bytes());
        }
        let file_sum = checksum(&rebuilt[HEADER_LEN..]);
        rebuilt[16..24].copy_from_slice(&file_sum.to_le_bytes());
        bytes = rebuilt;
        let loaded = decode(&bytes).expect("unknown section tolerated");
        assert_eq!(loaded.total(), prepared(false).total());
    }
}
