//! The `OPTION (USEPLAN n)` workflow as a library API (§4).
//!
//! A [`Session`] bundles a catalog, a database, and an optimizer
//! configuration. [`Session::prepare`] runs the optimizer *once* and
//! returns an owned [`PreparedQuery`] artifact; every subsequent count,
//! sample, page, or `USEPLAN` execution reuses it. The convenience
//! one-shot methods ([`Session::execute`], [`Session::execute_plan`],
//! [`Session::count_plans`]) are thin wrappers that prepare internally —
//! fine for scripts, wasteful in loops; hold a [`PreparedQuery`] (or a
//! [`crate::service::PlanService`]) when serving repeated requests.

use crate::lower::lower;
use crate::{Error, PlanSpace, PreparedQuery};
use plansample_bignum::Nat;
use plansample_catalog::Catalog;
use plansample_exec::{Database, Table};
use plansample_memo::PlanNode;
use plansample_optimizer::OptimizerConfig;
use plansample_query::QuerySpec;

/// Backwards-compatible name for the unified [`Error`] type: session
/// operations were the original source of this error enum before it was
/// promoted to the crate root.
pub use crate::Error as SessionError;

/// Result of executing a query through a session.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result rows.
    pub table: Table,
    /// Which plan ran: `None` = the optimizer's choice, `Some(rank)` =
    /// `USEPLAN rank`.
    pub rank: Option<Nat>,
    /// Total number of plans in the query's space.
    pub space_size: Nat,
    /// The executed plan's total cost.
    pub plan_cost: f64,
    /// Cost scaled so the optimizer's plan is 1.0 (the paper's unit).
    pub scaled_cost: f64,
    /// Rendered plan tree for display.
    pub plan_text: String,
}

/// A query-processing session: catalog + data + optimizer settings.
#[derive(Debug)]
pub struct Session {
    catalog: Catalog,
    db: Database,
    config: OptimizerConfig,
}

impl Session {
    /// Creates a session with default optimizer settings.
    pub fn new(catalog: Catalog, db: Database) -> Self {
        Session::with_config(catalog, db, OptimizerConfig::default())
    }

    /// Creates a session with explicit optimizer settings.
    pub fn with_config(catalog: Catalog, db: Database, config: OptimizerConfig) -> Self {
        Session {
            catalog,
            db,
            config,
        }
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The session's optimizer configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Optimizes `query` once and returns the owned, shareable artifact
    /// exposing the full counting/enumerating/sampling surface — the
    /// expensive step, paid exactly once per query.
    ///
    /// ```
    /// use plansample::session::Session;
    /// use plansample_bignum::Nat;
    /// use plansample_datagen::MicroScale;
    ///
    /// let (catalog, tables) = plansample_catalog::tpch::catalog();
    /// let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 11);
    /// let session = Session::new(catalog, db);
    ///
    /// let query = plansample_query::tpch::q6(session.catalog());
    /// let prepared = session.prepare(&query).unwrap();
    /// // Count, page, and execute — all against the one memo:
    /// assert!(!prepared.total().is_zero());
    /// let out = session.execute_prepared(&prepared, Some(&Nat::zero())).unwrap();
    /// assert_eq!(out.rank, Some(Nat::zero()));
    /// ```
    pub fn prepare(&self, query: &QuerySpec) -> Result<PreparedQuery, Error> {
        PreparedQuery::prepare(&self.catalog, query, &self.config)
    }

    /// Executes against an already prepared query: the optimizer's plan
    /// when `rank` is `None`, otherwise `OPTION (USEPLAN rank)`. Never
    /// re-optimizes.
    ///
    /// The artifact must have been prepared against this session's
    /// catalog (or an identical clone of it — e.g. a
    /// [`crate::service::PlanService`] sharing the same source): plan
    /// lowering resolves the artifact's table ids and column offsets
    /// through the *session's* catalog, so a mismatched catalog would
    /// produce wrong results.
    ///
    /// # Panics
    /// Panics when the artifact structurally cannot belong to this
    /// catalog (a referenced table id is out of range). Catalogs of
    /// matching shape but different contents are not detectable and
    /// remain the caller's contract.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        rank: Option<&Nat>,
    ) -> Result<QueryOutcome, Error> {
        for rel in &prepared.query().relations {
            assert!(
                (rel.table.0 as usize) < self.catalog.len(),
                "prepared query references table id {} outside this session's {}-table \
                 catalog — was it prepared against a different catalog?",
                rel.table.0,
                self.catalog.len()
            );
        }
        let (plan, rank) = match rank {
            Some(rank) => (prepared.unrank(rank)?, Some(rank.clone())),
            None => (prepared.best().0.clone(), None),
        };
        self.run_plan(prepared, &plan, rank)
    }

    /// Counts the plans the optimizer considers for `query` — the
    /// paper's "build the MEMO structure, count the possible plans".
    /// One-shot convenience: prepares internally and throws the artifact
    /// away.
    pub fn count_plans(&self, query: &QuerySpec) -> Result<Nat, Error> {
        Ok(self.prepare(query)?.total().clone())
    }

    /// Executes `query` with the optimizer's chosen plan (one-shot).
    pub fn execute(&self, query: &QuerySpec) -> Result<QueryOutcome, Error> {
        let prepared = self.prepare(query)?;
        self.execute_prepared(&prepared, None)
    }

    /// Executes `query` with plan number `rank` — `OPTION (USEPLAN rank)`
    /// (one-shot).
    pub fn execute_plan(&self, query: &QuerySpec, rank: &Nat) -> Result<QueryOutcome, Error> {
        let prepared = self.prepare(query)?;
        self.execute_prepared(&prepared, Some(rank))
    }

    fn run_plan(
        &self,
        prepared: &PreparedQuery,
        plan: &PlanNode,
        rank: Option<Nat>,
    ) -> Result<QueryOutcome, Error> {
        let space: &PlanSpace = prepared.space();
        let exec = lower(prepared.memo(), prepared.query(), &self.catalog, plan);
        let table = exec.execute(&self.db)?;
        let plan_cost = plan.total_cost(prepared.memo());
        Ok(QueryOutcome {
            table,
            rank,
            space_size: space.total().clone(),
            plan_cost,
            scaled_cost: plan_cost / prepared.best_cost(),
            plan_text: plan.render(prepared.memo()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpaceError;
    use plansample_catalog::tpch;
    use plansample_datagen::MicroScale;

    fn session() -> Session {
        let (catalog, tables) = tpch::catalog();
        let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 11);
        Session::new(catalog, db)
    }

    #[test]
    fn optimizer_plan_executes_q5() {
        let s = session();
        let q = plansample_query::tpch::q5(s.catalog());
        let out = s.execute(&q).unwrap();
        assert!(out.rank.is_none());
        assert!(
            (out.scaled_cost - 1.0).abs() < 1e-9,
            "optimizer plan is the 1.0 reference"
        );
        assert!(out.plan_text.contains("Agg"));
        assert!(out.space_size.to_f64() > 1e6);
    }

    #[test]
    fn useplan_reproduces_specific_plans() {
        let s = session();
        let q = plansample_query::tpch::q5(s.catalog());
        let prepared = s.prepare(&q).unwrap();
        let reference = s.execute_prepared(&prepared, None).unwrap();
        for rank in [0u64, 8, 12345] {
            let out = s
                .execute_prepared(&prepared, Some(&Nat::from(rank)))
                .unwrap();
            assert_eq!(out.rank, Some(Nat::from(rank)));
            assert!(
                out.table.multiset_eq(&reference.table),
                "USEPLAN {rank} must agree with the optimizer's plan"
            );
            assert!(out.scaled_cost >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn prepared_session_flow_optimizes_once() {
        let s = session();
        let q = plansample_query::tpch::q6(s.catalog());
        let before = plansample_optimizer::thread_optimizations_performed();
        let prepared = s.prepare(&q).unwrap();
        let n = prepared.total().to_u64().unwrap();
        for rank in 0..n.min(4) {
            s.execute_prepared(&prepared, Some(&Nat::from(rank)))
                .unwrap();
        }
        s.execute_prepared(&prepared, None).unwrap();
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed() - before,
            1,
            "prepare once, serve many"
        );
    }

    #[test]
    fn useplan_out_of_range_is_an_error() {
        let s = session();
        let q = plansample_query::tpch::q6(s.catalog());
        let n = s.count_plans(&q).unwrap();
        assert!(matches!(
            s.execute_plan(&q, &n),
            Err(SessionError::Space(SpaceError::RankOutOfRange { .. }))
        ));
        let mut last = n;
        last.decr();
        assert!(s.execute_plan(&q, &last).is_ok());
    }

    #[test]
    fn count_plans_matches_space() {
        let s = session();
        let q = plansample_query::tpch::q6(s.catalog());
        // Q6: lineitem scan (2 alternatives incl. sorts etc.) + agg pair.
        let n = s.count_plans(&q).unwrap();
        assert!(n.to_u64().unwrap() >= 4);
    }
}
