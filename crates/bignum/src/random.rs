//! Uniform random generation of a `Nat` below a bound.
//!
//! Uniform plan sampling (paper §1, §3) reduces to drawing a uniform rank in
//! `[0, N)` and unranking it. For multi-limb `N` we rejection-sample: draw
//! `bits(N)` random bits (masking the top limb) and retry until the draw is
//! `< N`. Each attempt succeeds with probability > 1/2, so the expected
//! number of rounds is < 2 regardless of `N`.

use crate::Nat;
use rand::Rng;

impl Nat {
    /// Draws a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero (the range is empty).
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Nat) -> Nat {
        assert!(!bound.is_zero(), "random_below: empty range");
        if let Some(b) = bound.to_u64() {
            return Nat::from(Self::random_below_u64(rng, b));
        }
        let bound_limbs = bound.limbs();
        let limbs = bound_limbs.len();
        let top = bound_limbs[limbs - 1];
        // Mask covering the significant bits of the top limb.
        let mask = if top.leading_zeros() == 0 {
            u64::MAX
        } else {
            (1u64 << (64 - top.leading_zeros())) - 1
        };
        loop {
            let mut draw = Vec::with_capacity(limbs);
            for _ in 0..limbs - 1 {
                draw.push(rng.gen::<u64>());
            }
            draw.push(rng.gen::<u64>() & mask);
            let candidate = Nat::from_limbs(draw);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Single-limb specialization of [`random_below`](Self::random_below):
    /// a uniform `u64` in `[0, bound)` with **exactly** the RNG
    /// consumption of `random_below` on the same single-limb bound — one
    /// `gen_range` call. The allocation-free sampling fast path draws
    /// ranks through this and stays bit-identical to the `Nat` path on
    /// the same seed.
    ///
    /// # Panics
    /// Panics if `bound` is zero (the range is empty).
    pub fn random_below_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        assert!(bound > 0, "random_below: empty range");
        rng.gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use crate::Nat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn draws_stay_in_range_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = Nat::from(10u64);
        for _ in 0..1000 {
            let d = Nat::random_below(&mut rng, &bound);
            assert!(d < bound);
        }
    }

    #[test]
    fn draws_stay_in_range_multi_limb() {
        let mut rng = StdRng::seed_from_u64(42);
        let bound: Nat = "123456789012345678901234567890123456789".parse().unwrap();
        for _ in 0..500 {
            let d = Nat::random_below(&mut rng, &bound);
            assert!(d < bound);
        }
    }

    #[test]
    fn small_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = Nat::from(5u64);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let d = Nat::random_below(&mut rng, &bound).to_u64().unwrap();
            seen[d as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..5 should appear: {seen:?}"
        );
    }

    #[test]
    fn multi_limb_mean_is_centered() {
        // For bound 2^80 the mean of uniform draws is ~2^79; check within 5%.
        let mut rng = StdRng::seed_from_u64(99);
        let bound = Nat::from(1u128 << 80);
        let mut acc = 0.0f64;
        let k = 4000;
        for _ in 0..k {
            acc += Nat::random_below(&mut rng, &bound).to_f64();
        }
        let mean = acc / k as f64;
        let expect = (2f64).powi(79);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_bound_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        Nat::random_below(&mut rng, &Nat::zero());
    }
}
