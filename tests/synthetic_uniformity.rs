//! Statistical validation of the samplers on *synthetic* join-graph
//! spaces — chain, star, and cycle topologies the TPC-H workload never
//! exercises. For each space the chi-square uniformity test must accept
//! the rank-based sampler and reject the naive random walk, the walk's
//! bias must be *large* as an effect size (not merely detectable), and
//! sub-space sampling must be uniform within its slice.
//!
//! These run in tier-1 `cargo test`; the slower, larger-space sweeps
//! (including multi-limb counts) live in `tests/statistical.rs` behind
//! `PLANSAMPLE_STATISTICAL=1`.

mod common;

use common::{
    pick_subspace_roots, rank_spectrum, rooted_spectrum, seeded_rng, Sampler, SynthSpace,
};
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_stats::{chi_square_uniform, ks_test, ks_test_two_sample};

/// The three fast fixtures: every topology shape at 3 relations, whose
/// spaces (≈1k–4k plans) allow an exact per-rank spectrum.
fn fixtures() -> Vec<SynthSpace> {
    [Topology::Chain, Topology::Star, Topology::Cycle]
        .into_iter()
        .map(|t| SynthSpace::build(JoinGraphSpec::new(t, 3, 42)))
        .collect()
}

#[test]
fn unranking_sampler_is_uniform_on_every_topology() {
    for synth in fixtures() {
        let space = synth.space();
        let n = space.total().to_u64().unwrap() as usize;
        let mut rng = seeded_rng(1);
        let freq = rank_spectrum(space, Sampler::Unranking, 8 * n, &mut rng);
        let test = chi_square_uniform(&freq).unwrap();
        assert!(
            !test.rejects_at(0.001),
            "{}: uniformity rejected: {test}",
            synth.label
        );
    }
}

#[test]
fn naive_walk_is_rejected_with_a_large_effect_size_on_every_topology() {
    for synth in fixtures() {
        let space = synth.space();
        let n = space.total().to_u64().unwrap() as usize;
        let mut rng = seeded_rng(2);
        let naive =
            chi_square_uniform(&rank_spectrum(space, Sampler::NaiveWalk, 8 * n, &mut rng)).unwrap();
        assert!(
            naive.rejects_at(1e-6),
            "{}: naive walk passed uniformity: {naive}",
            synth.label
        );
        // Rejection alone could be a powerful test detecting a trivial
        // bias; Cohen's w ≥ 0.5 certifies the bias is *large*.
        assert!(
            naive.effect_size() > 0.5,
            "{}: naive-walk bias w = {} is not a large effect",
            synth.label,
            naive.effect_size()
        );
        // The statistic must clear the rejection threshold by orders of
        // magnitude, not scrape past it.
        let crit = naive.critical_value(0.001);
        assert!(
            naive.statistic > 5.0 * crit,
            "{}: chi2 {} barely exceeds critical {crit}",
            synth.label,
            naive.statistic
        );
    }
}

/// Satellite: sub-space uniformity via `sample_rooted`/`rank_rooted`,
/// covering physical roots in the memo's root group *and* an interior
/// (non-root) join group.
#[test]
fn rooted_subspace_sampling_is_uniform_at_root_and_interior_roots() {
    for synth in fixtures() {
        let space = synth.space();

        // 2 roots from the root group + 1 from an interior join group.
        let roots =
            pick_subspace_roots(synth.memo(), space, synth.query.relations.len(), 6..=20_000);
        assert!(
            roots.len() >= 3,
            "{}: expected 2 root-group + 1 interior sub-space roots, got {}",
            synth.label,
            roots.len()
        );

        for v in roots {
            let count = space.count_rooted(v).to_u64().unwrap() as usize;
            let mut rng = seeded_rng(3 + v.index as u64);
            let freq = rooted_spectrum(space, v, 8 * count, &mut rng);
            let test = chi_square_uniform(&freq).unwrap();
            assert!(
                !test.rejects_at(0.001),
                "{}: sub-space at {v} ({count} plans) not uniform: {test}",
                synth.label
            );
        }
    }
}

#[test]
fn rooted_unranking_covers_exactly_the_subspace() {
    let synth = SynthSpace::build(JoinGraphSpec::new(Topology::Star, 3, 42));
    let space = synth.space();
    let (v, _) = synth
        .memo()
        .group(synth.memo().root())
        .phys_iter()
        .find(|(id, _)| {
            space
                .count_rooted(*id)
                .to_u64()
                .is_some_and(|c| (2..=2_000).contains(&c))
        })
        .expect("a modest sub-space exists");
    let count = space.count_rooted(v).to_u64().unwrap();
    let mut seen = std::collections::HashSet::new();
    for r in 0..count {
        let plan = space.unrank_rooted(v, &Nat::from(r)).unwrap();
        assert_eq!(plan.id, v, "sub-space root is pinned");
        assert_eq!(space.rank_rooted(&plan).unwrap(), Nat::from(r));
        assert!(seen.insert(format!("{:?}", plan.preorder_ids())));
    }
    assert!(space.unrank_rooted(v, &Nat::from(count)).is_err());
}

/// The sampled cost distribution must match the exhaustive one — the
/// end-to-end guarantee behind Figure 4 (a sampler can be rank-uniform
/// yet feed a broken cost pipeline; KS closes that gap).
#[test]
fn sampled_costs_ks_match_exhaustive_enumeration() {
    let synth = SynthSpace::build(JoinGraphSpec::new(Topology::Chain, 3, 42));
    let space = synth.space();
    let exhaustive: Vec<f64> = space
        .enumerate()
        .map(|p| p.total_cost(synth.memo()) / synth.best_cost)
        .collect();
    assert_eq!(exhaustive.len() as u64, space.total().to_u64().unwrap());

    let mut rng = seeded_rng(4);
    let sampled = common::sampled_scaled_costs(&synth, space, 4_000, &mut rng);
    let test = ks_test_two_sample(&sampled, &exhaustive).unwrap();
    assert!(
        !test.rejects_at(0.001),
        "sampled costs diverge from exhaustive enumeration: {test}"
    );
}

/// KS view of the same bias the chi-square tests measure: uniform ranks
/// have a uniform CDF on [0, 1); the naive walk's do not.
#[test]
fn ks_on_scaled_ranks_separates_the_samplers() {
    let synth = SynthSpace::build(JoinGraphSpec::new(Topology::Cycle, 3, 42));
    let space = synth.space();
    let total = space.total().to_f64();
    let mut rng = seeded_rng(5);
    let draws = 10_000usize;

    let uniform_ranks: Vec<f64> = (0..draws)
        .map(|_| Nat::random_below(&mut rng, space.total()).to_f64() / total)
        .collect();
    let naive_ranks: Vec<f64> = (0..draws)
        .map(|_| {
            let plan = space.sample_naive_walk(&mut rng).expect("complete space");
            space.rank(&plan).unwrap().to_f64() / total
        })
        .collect();

    let uniform_cdf = |x: f64| x.clamp(0.0, 1.0);
    let accept = ks_test(&uniform_ranks, uniform_cdf).unwrap();
    let reject = ks_test(&naive_ranks, uniform_cdf).unwrap();
    assert!(
        !accept.rejects_at(0.001),
        "uniform ranks rejected: {accept}"
    );
    assert!(reject.rejects_at(1e-6), "naive ranks accepted: {reject}");
    assert!(
        reject.statistic > 2.0 * accept.statistic,
        "bias D {} vs null D {}",
        reject.statistic,
        accept.statistic
    );
}
