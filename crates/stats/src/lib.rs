//! Statistics toolkit for the paper's §5 cost-distribution analysis.
//!
//! Provides exactly what the evaluation needs, self-contained:
//!
//! - [`Summary`]: min/mean/max and quantiles (Table 1's `Min Mean Max`
//!   columns plus the `costs ≤ 2`, `costs ≤ 10` fractions);
//! - [`Histogram`]: fixed-width bucketing with the paper's "lower 50% of
//!   sampled costs" zoom (Figure 4);
//! - [`TestOutcome`]: the shared hypothesis-test result type — statistic,
//!   p-bound, recoverable critical values, effect size — with degenerate
//!   inputs reported as typed [`StatsError`]s;
//! - [`chi_square_uniform`] / [`chi_square_gof`]: goodness-of-fit with
//!   p-values via the regularized incomplete gamma function;
//! - [`ks_test`] / [`ks_test_two_sample`]: Kolmogorov–Smirnov tests
//!   against a model CDF or between two samples ([`ks_statistic`] gives
//!   the raw sup-distance);
//! - [`fit_exponential`] and [`fit_gamma`] (MLE with Newton refinement)
//!   with KS goodness-of-fit: §5 observes distributions "resembling
//!   exponential distributions … Gamma-distributions with shape
//!   parameter close to 1";
//! - [`ks_gamma_fit`] / [`ks_exponential_fit`]: Lilliefors-corrected
//!   p-values for those *fitted-parameter* KS tests via a seeded
//!   parametric bootstrap (the classical Kolmogorov bound is optimistic
//!   once parameters are estimated from the tested sample).

#![warn(missing_docs)]

mod bootstrap;
mod hypothesis;
mod special;

pub use bootstrap::{
    bootstrap_quantile_cis, ks_exponential_fit, ks_gamma_fit, BootstrapOutcome, QuantileCi,
};
pub use hypothesis::{NullDistribution, StatsError, TestOutcome};
pub use special::{digamma, gamma_p, gamma_q, kolmogorov_q, ln_gamma, trigamma};

use hypothesis::scaled_ks;

/// Order statistics and moments of a sample.
#[derive(Debug, Clone)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Summary {
    /// Builds a summary; ignores NaNs. Panics on an empty sample.
    pub fn of(data: &[f64]) -> Summary {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|v| !v.is_nan()).collect();
        assert!(!sorted.is_empty(), "summary of an empty sample");
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Summary {
            sorted,
            mean,
            variance,
        }
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Quantile by nearest-rank interpolation, `p ∈ [0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p outside [0,1]");
        let idx = p * (self.sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Fraction of the sample `≤ threshold` — Table 1's "costs ≤ 2" and
    /// "costs ≤ 10" columns.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= threshold);
        count as f64 / self.sorted.len() as f64
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// A fixed-bucket-width histogram over `[lo, hi]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Buckets `data` into `buckets` equal-width bins over `[lo, hi]`;
    /// values outside the range are clamped into the edge bins.
    pub fn build(data: &[f64], buckets: usize, lo: f64, hi: f64) -> Histogram {
        assert!(buckets > 0, "need at least one bucket");
        assert!(hi > lo, "empty histogram range");
        let mut counts = vec![0usize; buckets];
        let width = (hi - lo) / buckets as f64;
        for &v in data {
            let idx = (((v - lo) / width) as isize).clamp(0, buckets as isize - 1) as usize;
            counts[idx] += 1;
        }
        Histogram { lo, hi, counts }
    }

    /// The paper's Figure 4 view: histogram of the *lower* `fraction` of
    /// the sorted sample ("zoom-ins to the lower 50% sampled costs; …
    /// the part clipped on the right hand side contains only outlying
    /// elements").
    pub fn lower_fraction(data: &[f64], fraction: f64, buckets: usize) -> Histogram {
        assert!((0.0..=1.0).contains(&fraction));
        let summary = Summary::of(data);
        let cut = summary.quantile(fraction);
        let lo = summary.min();
        let kept: Vec<f64> = data.iter().copied().filter(|&v| v <= cut).collect();
        Histogram::build(&kept, buckets, lo, cut.max(lo + f64::EPSILON))
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// `(bucket_midpoint, count)` series for plotting.
    pub fn series(&self) -> Vec<(f64, usize)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Renders an ASCII bar chart (for the experiment binaries).
    pub fn render(&self, bar_width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(c * bar_width / max);
            out.push_str(&format!(
                "{:>12.4e} |{:<width$} {}\n",
                self.lo + (i as f64 + 0.5) * width,
                bar,
                c,
                width = bar_width
            ));
        }
        out
    }
}

/// Chi-square test of observed counts against uniform expectation.
///
/// Degenerate inputs are typed errors: fewer than two categories is
/// [`StatsError::NotEnoughCategories`] (no degrees of freedom), a table
/// whose counts sum to zero is [`StatsError::EmptySample`].
pub fn chi_square_uniform(observed: &[usize]) -> Result<TestOutcome, StatsError> {
    if observed.len() < 2 {
        return Err(StatsError::NotEnoughCategories {
            got: observed.len(),
        });
    }
    let total: usize = observed.iter().sum();
    if total == 0 {
        return Err(StatsError::EmptySample);
    }
    let expected = total as f64 / observed.len() as f64;
    chi_square_gof(observed, &vec![expected; observed.len()])
}

/// Chi-square goodness-of-fit against explicit expected counts.
pub fn chi_square_gof(observed: &[usize], expected: &[f64]) -> Result<TestOutcome, StatsError> {
    if observed.len() != expected.len() {
        return Err(StatsError::LengthMismatch {
            observed: observed.len(),
            expected: expected.len(),
        });
    }
    if observed.len() < 2 {
        return Err(StatsError::NotEnoughCategories {
            got: observed.len(),
        });
    }
    if let Some((index, &value)) = expected
        .iter()
        .enumerate()
        .find(|(_, &e)| e <= 0.0 || e.is_nan())
    {
        return Err(StatsError::NonPositiveExpected { index, value });
    }
    let statistic: f64 = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| (o as f64 - e).powi(2) / e)
        .sum();
    let dof = observed.len() - 1;
    Ok(TestOutcome {
        test: "chi-square",
        statistic,
        p_value: gamma_q(dof as f64 / 2.0, statistic / 2.0),
        n: observed.iter().sum(),
        null: NullDistribution::ChiSquare { dof },
    })
}

/// An exponential fit `f(x) = rate · exp(−rate·(x − shift))`.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialFit {
    /// Rate parameter (1/mean of the shifted sample).
    pub rate: f64,
    /// Location shift (the sample minimum).
    pub shift: f64,
}

impl ExponentialFit {
    /// CDF of the fitted distribution.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.shift {
            0.0
        } else {
            1.0 - (-(x - self.shift) * self.rate).exp()
        }
    }

    /// KS goodness-of-fit of `data` against this fit. Since the
    /// parameters were estimated from the same data, the p-value is an
    /// *optimistic* bound (the Lilliefors effect) — use it to compare
    /// models and flag gross misfits; for calibrated significance use
    /// the parametric-bootstrap correction ([`ks_exponential_fit`] /
    /// [`ks_gamma_fit`]).
    pub fn goodness_of_fit(&self, data: &[f64]) -> Result<TestOutcome, StatsError> {
        ks_test(data, |x| self.cdf(x))
    }
}

/// Maximum-likelihood exponential fit (shift = min, rate = 1/mean).
pub fn fit_exponential(data: &[f64]) -> ExponentialFit {
    let s = Summary::of(data);
    let shift = s.min();
    let mean = (s.mean() - shift).max(f64::EPSILON);
    ExponentialFit {
        rate: 1.0 / mean,
        shift,
    }
}

/// A Gamma fit with shape `k` and scale `θ`.
#[derive(Debug, Clone, Copy)]
pub struct GammaFit {
    /// Shape parameter `k` (the paper's distributions have `k ≈ 1`).
    pub shape: f64,
    /// Scale parameter `θ`.
    pub scale: f64,
    /// Location shift applied before fitting (the sample minimum).
    pub shift: f64,
}

impl GammaFit {
    /// CDF of the fitted distribution.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.shift {
            0.0
        } else {
            gamma_p(self.shape, (x - self.shift) / self.scale)
        }
    }

    /// KS goodness-of-fit of `data` against this fit. Since the
    /// parameters were estimated from the same data, the p-value is an
    /// *optimistic* bound (the Lilliefors effect) — use it to compare
    /// models and flag gross misfits; for calibrated significance use
    /// the parametric-bootstrap correction ([`ks_exponential_fit`] /
    /// [`ks_gamma_fit`]).
    pub fn goodness_of_fit(&self, data: &[f64]) -> Result<TestOutcome, StatsError> {
        ks_test(data, |x| self.cdf(x))
    }
}

/// Maximum-likelihood Gamma fit: Minka's closed-form initialization for
/// the shape followed by Newton steps on
/// `ln k − ψ(k) = ln(mean) − mean(ln x)`.
pub fn fit_gamma(data: &[f64]) -> GammaFit {
    let s = Summary::of(data);
    // Shift so the support starts at zero (scaled costs start at ~1).
    let shift = s.min();
    let eps = (s.mean() - shift).abs().max(1e-12) * 1e-9 + 1e-12;
    let shifted: Vec<f64> = s.sorted().iter().map(|&v| v - shift + eps).collect();
    let n = shifted.len() as f64;
    let mean = shifted.iter().sum::<f64>() / n;
    let mean_ln = shifted.iter().map(|&v| v.ln()).sum::<f64>() / n;
    let stat = (mean.ln() - mean_ln).max(1e-12);

    // Minka (2002) initialization.
    let mut k = (3.0 - stat + ((stat - 3.0).powi(2) + 24.0 * stat).sqrt()) / (12.0 * stat);
    for _ in 0..50 {
        let f = k.ln() - digamma(k) - stat;
        let fp = 1.0 / k - trigamma(k);
        let next = (k - f / fp).max(1e-9);
        if (next - k).abs() < 1e-12 * k {
            k = next;
            break;
        }
        k = next;
    }
    GammaFit {
        shape: k,
        scale: mean / k,
        shift,
    }
}

/// Kolmogorov–Smirnov statistic of a sample against a CDF.
pub fn ks_statistic(data: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    let s = Summary::of(data);
    let n = s.n() as f64;
    s.sorted()
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let f = cdf(x);
            let lo = (f - i as f64 / n).abs();
            let hi = ((i as f64 + 1.0) / n - f).abs();
            lo.max(hi)
        })
        .fold(0.0, f64::max)
}

/// One-sample Kolmogorov–Smirnov test of `data` against the model CDF.
///
/// The p-value uses the asymptotic Kolmogorov distribution with
/// Stephens' finite-sample correction — accurate for `n ≳ 35` and a
/// safe upper bound below that.
pub fn ks_test(data: &[f64], cdf: impl Fn(f64) -> f64) -> Result<TestOutcome, StatsError> {
    let finite = data.iter().filter(|v| !v.is_nan()).count();
    if finite == 0 {
        return Err(StatsError::EmptySample);
    }
    let d = ks_statistic(data, cdf);
    let effective_n = finite as f64;
    Ok(TestOutcome {
        test: "ks-1sample",
        statistic: d,
        p_value: kolmogorov_q(scaled_ks(d, effective_n)),
        n: finite,
        null: NullDistribution::Kolmogorov { effective_n },
    })
}

/// Two-sample Kolmogorov–Smirnov test: are `a` and `b` draws from the
/// same distribution? The statistic is the sup-distance between the two
/// empirical CDFs; the null uses the effective size `n·m/(n+m)`.
pub fn ks_test_two_sample(a: &[f64], b: &[f64]) -> Result<TestOutcome, StatsError> {
    let mut xs: Vec<f64> = a.iter().copied().filter(|v| !v.is_nan()).collect();
    let mut ys: Vec<f64> = b.iter().copied().filter(|v| !v.is_nan()).collect();
    if xs.is_empty() || ys.is_empty() {
        return Err(StatsError::EmptySample);
    }
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (n, m) = (xs.len(), ys.len());
    // Merge-walk the two sorted samples tracking the ECDF gap.
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < n && j < m {
        let x = if xs[i] <= ys[j] { xs[i] } else { ys[j] };
        while i < n && xs[i] <= x {
            i += 1;
        }
        while j < m && ys[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    let effective_n = (n * m) as f64 / (n + m) as f64;
    Ok(TestOutcome {
        test: "ks-2sample",
        statistic: d,
        p_value: kolmogorov_q(scaled_ks(d, effective_n)),
        n: n + m,
        null: NullDistribution::Kolmogorov { effective_n },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.n(), 4);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.mean(), 2.5);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.quantile(0.5), 2.5);
    }

    #[test]
    fn summary_ignores_nans() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        Summary::of(&[]);
    }

    #[test]
    fn fraction_below_matches_table1_semantics() {
        let s = Summary::of(&[1.0, 1.5, 2.0, 5.0, 11.0]);
        assert!((s.fraction_below(2.0) - 0.6).abs() < 1e-12);
        assert!((s.fraction_below(10.0) - 0.8).abs() < 1e-12);
        assert_eq!(s.fraction_below(0.5), 0.0);
        assert_eq!(s.fraction_below(100.0), 1.0);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let h = Histogram::build(&[0.0, 0.1, 0.9, 1.0, -5.0, 99.0], 2, 0.0, 1.0);
        // -5 clamps into bucket 0; 1.0 and 99 into bucket 1.
        assert_eq!(h.counts(), &[3, 3]);
        let series = h.series();
        assert!((series[0].0 - 0.25).abs() < 1e-12);
        assert!((series[1].0 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lower_fraction_zooms_like_figure4() {
        // 100 points 1..=100: lower 50% keeps values <= ~50.5.
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = Histogram::lower_fraction(&data, 0.5, 10);
        let kept: usize = h.counts().iter().sum();
        assert!((50..=51).contains(&kept), "kept {kept}");
        assert_eq!(h.lo(), 1.0);
        assert!(h.hi() <= 51.0);
    }

    #[test]
    fn histogram_render_is_plottable() {
        let h = Histogram::build(&[0.1, 0.1, 0.9], 2, 0.0, 1.0);
        let text = h.render(10);
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn chi_square_uniform_accepts_uniform_counts() {
        let t = chi_square_uniform(&[100, 103, 98, 99]).unwrap();
        assert!(t.p_value > 0.5, "p={}", t.p_value);
        assert_eq!(t.dof(), Some(3));
        assert!(!t.rejects_at(0.05));
        assert_eq!(t.n, 400);
    }

    #[test]
    fn chi_square_uniform_rejects_skewed_counts() {
        let t = chi_square_uniform(&[400, 10, 10, 10]).unwrap();
        assert!(t.p_value < 1e-6, "p={}", t.p_value);
        assert!(t.statistic > 100.0);
        assert!(t.rejects_at(0.001));
        // Cohen's w on a 93%-in-one-bucket table is a huge effect.
        assert!(t.effect_size() > 1.0, "w = {}", t.effect_size());
    }

    #[test]
    fn chi_square_p_value_matches_tables() {
        // k=3 dof, x=7.815 -> p = 0.05.
        let t = chi_square_gof(&[0, 0, 0, 0], &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(t.dof(), Some(3));
        assert!((gamma_q(1.5, 7.815 / 2.0) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn chi_square_rejects_degenerate_inputs_with_typed_errors() {
        // Empty table: no categories at all.
        assert_eq!(
            chi_square_uniform(&[]),
            Err(StatsError::NotEnoughCategories { got: 0 })
        );
        // Single bucket: zero degrees of freedom (was a panic in
        // gamma_q(0, ·) before).
        assert_eq!(
            chi_square_uniform(&[500]),
            Err(StatsError::NotEnoughCategories { got: 1 })
        );
        // All-zero counts: nothing was observed (was NaN expectations).
        assert_eq!(chi_square_uniform(&[0, 0, 0]), Err(StatsError::EmptySample));
        // GOF-specific degeneracies.
        assert_eq!(
            chi_square_gof(&[1, 2], &[1.0]),
            Err(StatsError::LengthMismatch {
                observed: 2,
                expected: 1
            })
        );
        assert!(matches!(
            chi_square_gof(&[1, 2], &[1.0, 0.0]),
            Err(StatsError::NonPositiveExpected { index: 1, .. })
        ));
        assert!(matches!(
            chi_square_gof(&[5], &[5.0]),
            Err(StatsError::NotEnoughCategories { got: 1 })
        ));
    }

    #[test]
    fn ks_test_accepts_the_true_model() {
        // Uniform grid sample against the uniform CDF: tiny D, p ≈ 1.
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let t = ks_test(&data, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(t.statistic < 0.01, "D = {}", t.statistic);
        assert!(t.p_value > 0.99, "p = {}", t.p_value);
        assert!(!t.rejects_at(0.05));
    }

    #[test]
    fn ks_test_rejects_the_wrong_model() {
        // Uniform sample against an exponential CDF.
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let t = ks_test(&data, |x| 1.0 - (-x).exp()).unwrap();
        assert!(t.rejects_at(1e-6), "p = {}", t.p_value);
        // For KS, the effect size is D itself.
        assert!((t.effect_size() - t.statistic).abs() < 1e-15);
    }

    #[test]
    fn ks_test_p_value_matches_critical_table() {
        // Place D exactly at the asymptotic 5% critical point: p ≈ 0.05.
        let n = 2500usize;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let crit = 1.3581 / (n as f64).sqrt();
        // Shift the whole sample by `crit` relative to the model.
        let t = ks_test(&data, |x| (x + crit).clamp(0.0, 1.0)).unwrap();
        assert!((t.p_value - 0.05).abs() < 0.01, "p = {}", t.p_value);
    }

    #[test]
    fn ks_two_sample_accepts_same_distribution() {
        let a: Vec<f64> = (0..800).map(|i| (i as f64 + 0.5) / 800.0).collect();
        let b: Vec<f64> = (0..600).map(|i| (i as f64 + 0.25) / 600.0).collect();
        let t = ks_test_two_sample(&a, &b).unwrap();
        assert!(t.p_value > 0.5, "p = {}", t.p_value);
        assert_eq!(t.n, 1400);
    }

    #[test]
    fn ks_two_sample_rejects_shifted_distribution() {
        let a: Vec<f64> = (0..800).map(|i| (i as f64 + 0.5) / 800.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.2).collect();
        let t = ks_test_two_sample(&a, &b).unwrap();
        assert!((t.statistic - 0.2).abs() < 0.01, "D = {}", t.statistic);
        assert!(t.rejects_at(1e-6), "p = {}", t.p_value);
    }

    #[test]
    fn ks_two_sample_statistic_is_symmetric() {
        let a = [0.1, 0.4, 0.4, 0.9];
        let b = [0.2, 0.3, 0.8, 0.85, 0.95];
        let ab = ks_test_two_sample(&a, &b).unwrap();
        let ba = ks_test_two_sample(&b, &a).unwrap();
        assert!((ab.statistic - ba.statistic).abs() < 1e-15);
        assert!((ab.p_value - ba.p_value).abs() < 1e-15);
    }

    #[test]
    fn ks_tests_reject_empty_samples() {
        assert_eq!(ks_test(&[], |x| x).unwrap_err(), StatsError::EmptySample);
        assert_eq!(
            ks_test(&[f64::NAN], |x| x).unwrap_err(),
            StatsError::EmptySample
        );
        assert_eq!(
            ks_test_two_sample(&[1.0], &[]).unwrap_err(),
            StatsError::EmptySample
        );
    }

    #[test]
    fn gamma_goodness_of_fit_flags_misfit() {
        // A gamma fit to its own (exponential-like) data passes …
        let expo: Vec<f64> = (1..2000)
            .map(|i| -(1.0 - i as f64 / 2000.0).ln() * 3.0)
            .collect();
        let fit = fit_gamma(&expo);
        let good = fit.goodness_of_fit(&expo).unwrap();
        assert!(!good.rejects_at(0.001), "{good}");
        // … while bimodal data is flagged even by its own best fit.
        let bimodal: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { 100.0 })
            .collect();
        let bad_fit = fit_gamma(&bimodal);
        let bad = bad_fit.goodness_of_fit(&bimodal).unwrap();
        assert!(bad.rejects_at(0.001), "{bad}");
        assert!(bad.statistic > good.statistic * 5.0);
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        // Deterministic exponential sample via inverse-CDF at uniform
        // quantiles: x_i = -ln(1 - u_i)/rate.
        let rate = 2.5;
        let data: Vec<f64> = (1..1000)
            .map(|i| {
                let u = i as f64 / 1000.0;
                -(1.0 - u).ln() / rate
            })
            .collect();
        let fit = fit_exponential(&data);
        assert!((fit.rate - rate).abs() / rate < 0.05, "rate {}", fit.rate);
        assert!(fit.cdf(fit.shift) == 0.0);
        assert!(fit.cdf(f64::INFINITY) == 1.0);
        let ks = ks_statistic(&data, |x| fit.cdf(x));
        assert!(ks < 0.05, "ks {ks}");
    }

    #[test]
    fn gamma_fit_recovers_shape_one() {
        // Exponential = Gamma(shape 1): the fit must find shape ≈ 1 —
        // this is exactly the §5 observation the fit exists to check.
        let data: Vec<f64> = (1..2000)
            .map(|i| {
                let u = i as f64 / 2000.0;
                -(1.0 - u).ln() * 3.0
            })
            .collect();
        let fit = fit_gamma(&data);
        assert!(
            (fit.shape - 1.0).abs() < 0.15,
            "shape {} should be ~1",
            fit.shape
        );
    }

    #[test]
    fn gamma_fit_recovers_larger_shapes() {
        // Gamma(k=3) sample as the sum of three inverse-CDF exponentials
        // at shuffled quantile offsets (deterministic, roughly
        // independent).
        let n = 3000usize;
        let exp_at = |j: usize, m: usize| -> f64 {
            let u = (j % m) as f64 / m as f64 + 0.5 / m as f64;
            -(1.0 - u).ln()
        };
        let data: Vec<f64> = (0..n)
            .map(|i| exp_at(i * 7 + 1, n) + exp_at(i * 13 + 3, n) + exp_at(i * 29 + 11, n))
            .collect();
        let fit = fit_gamma(&data);
        assert!(
            fit.shape > 2.0 && fit.shape < 4.5,
            "shape {} should be ~3",
            fit.shape
        );
    }

    #[test]
    fn ks_statistic_detects_wrong_model() {
        let data: Vec<f64> = (1..500).map(|i| i as f64 / 500.0).collect(); // uniform
        let exp_fit = fit_exponential(&data);
        let ks_exp = ks_statistic(&data, |x| exp_fit.cdf(x));
        let ks_unif = ks_statistic(&data, |x| x.clamp(0.0, 1.0));
        assert!(ks_unif < 0.01);
        assert!(ks_exp > ks_unif * 5.0);
    }
}
