//! Survey of synthetic join-graph plan spaces.
//!
//! Builds the four canonical topologies (chain, star, cycle, clique) at
//! growing sizes, optimizes each, and prints the exact plan count with
//! its `u64`-limb footprint — the quick way to see where spaces outgrow
//! machine integers and why the counting machinery uses bignums.
//!
//! ```text
//! cargo run --release --example synthetic_spaces
//! ```

use plansample::PreparedQuery;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_optimizer::OptimizerConfig;

fn main() {
    println!(
        "{:<12} {:>5} {:>28} {:>6} {:>10}",
        "space", "rels", "#plans", "limbs", "exprs"
    );
    for topology in Topology::ALL {
        for relations in [3usize, 4, 5, 6, 8, 9, 10] {
            // Cliques explode fastest; stop before optimization gets slow.
            if topology == Topology::Clique && relations > 9 {
                continue;
            }
            let spec = JoinGraphSpec::new(topology, relations, 42);
            let (catalog, query) = spec.build();
            let prepared = PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default())
                .expect("optimizes");
            let total = prepared.total();
            println!(
                "{:<12} {:>5} {:>28} {:>6} {:>10}",
                spec.label(),
                relations,
                if total.bits() <= 93 {
                    total.to_string()
                } else {
                    total.to_scientific(3)
                },
                total.limbs().len(),
                prepared.memo().num_physical(),
            );
        }
        println!();
    }
}
