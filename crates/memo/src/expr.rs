//! Logical and physical expressions stored in MEMO groups.
//!
//! Logical operators describe *what* a group computes; physical operators
//! describe *how*. Only physical operators appear in executable plans, so
//! only they participate in counting/unranking (§3.1: "we extract all
//! physical operators"). Each physical operator knows its child slots —
//! which group each input comes from and what physical property that
//! input must deliver — which is the information the materialized-links
//! step consumes.

use crate::{GroupId, SortOrder};
use plansample_query::{ColRef, RelId};

/// A logical (algebraic) operator. Children are group references.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Access one base relation instance (filters are implicit: every
    /// access to `rel` applies that relation's local predicates).
    Scan {
        /// The relation instance.
        rel: RelId,
    },
    /// Join two disjoint sub-goals; all join predicates crossing the two
    /// relation sets are applied.
    Join {
        /// Left input goal.
        left: GroupId,
        /// Right input goal.
        right: GroupId,
    },
    /// Final grouping/aggregation over the full join.
    Agg {
        /// Input goal (the group covering all relations).
        input: GroupId,
    },
}

/// A physical (executable) operator. Children are group references plus
/// property requirements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PhysicalOp {
    /// Heap scan of a base relation; delivers no order.
    TableScan {
        /// The relation instance.
        rel: RelId,
    },
    /// Ordered scan through an index; delivers order on the index column.
    SortedIdxScan {
        /// The relation instance.
        rel: RelId,
        /// The indexed column (also the delivered sort key).
        col: ColRef,
    },
    /// Sort enforcer: same-group child, delivers `target`.
    ///
    /// Its valid children are the group's *non-enforcer* operators that do
    /// **not** already satisfy `target` (sorting an already-sorted stream
    /// is never generated, which also keeps the plan graph acyclic — this
    /// is the `Sort 1.4 → TableScan 1.2` link structure of Figure 3).
    Sort {
        /// The order this enforcer produces.
        target: SortOrder,
    },
    /// Tuple-at-a-time nested loops join; applies all crossing predicates;
    /// delivers no order.
    NestedLoopJoin {
        /// Build (outer) side goal.
        left: GroupId,
        /// Probe (inner) side goal.
        right: GroupId,
    },
    /// Hash join on the equality predicates crossing the inputs; delivers
    /// no order. Requires at least one crossing equality predicate.
    HashJoin {
        /// Build side goal.
        left: GroupId,
        /// Probe side goal.
        right: GroupId,
    },
    /// Sort-merge join on one crossing predicate (`left_key = right_key`),
    /// remaining crossing predicates applied as residuals. Requires both
    /// inputs sorted on their key; delivers the left key's order.
    MergeJoin {
        /// Left input goal.
        left: GroupId,
        /// Right input goal.
        right: GroupId,
        /// Sort/merge key on the left input.
        left_key: ColRef,
        /// Sort/merge key on the right input.
        right_key: ColRef,
    },
    /// Hash-based grouping; no input requirement, delivers no order.
    HashAgg {
        /// Input goal.
        input: GroupId,
    },
    /// Streaming grouping; requires the input sorted on the full group-by
    /// key list and delivers that order.
    StreamAgg {
        /// Input goal.
        input: GroupId,
        /// Required (and delivered) grouping order.
        group_order: SortOrder,
    },
}

impl PhysicalOp {
    /// Short operator name for plan rendering.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::TableScan { .. } => "TableScan",
            PhysicalOp::SortedIdxScan { .. } => "SortedIdxScan",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysicalOp::HashJoin { .. } => "HashJoin",
            PhysicalOp::MergeJoin { .. } => "MergeJoin",
            PhysicalOp::HashAgg { .. } => "HashAgg",
            PhysicalOp::StreamAgg { .. } => "StreamAgg",
        }
    }

    /// `true` for property enforcers (operators whose child lives in their
    /// own group).
    pub fn is_enforcer(&self) -> bool {
        matches!(self, PhysicalOp::Sort { .. })
    }

    /// `true` for leaf (zero-input) operators.
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            PhysicalOp::TableScan { .. } | PhysicalOp::SortedIdxScan { .. }
        )
    }
}

/// What a child slot demands from the chosen child expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Requirement {
    /// The child's delivered order must satisfy this order (the empty
    /// order accepts anything — the paper's "any operator from group 1
    /// and 2" case for hash joins).
    Order(SortOrder),
    /// Enforcer input: the child must be a non-enforcer of the *same*
    /// group whose delivered order does not already satisfy `target`.
    SortInput {
        /// The order the enforcer will produce.
        target: SortOrder,
    },
}

/// One child position of a physical operator: where the input comes from
/// and what it must provide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChildSlot {
    /// The group supplying this input.
    pub group: GroupId,
    /// The property demanded of it.
    pub requirement: Requirement,
}

/// A physical expression: the operator plus its derived properties and
/// local cost.
///
/// The sort order an operator delivers is a function of the operator
/// itself (a table scan delivers nothing, an index scan its index
/// column, a sort its target, a merge join its left key …), so it is
/// *derived on demand* ([`delivered_cols`](Self::delivered_cols) /
/// [`delivered`](Self::delivered)) rather than stored. That keeps the
/// expression at `op + two f64s` — the MEMO stores one of these per
/// physical alternative, and on large memos the struct size dominates
/// the resident footprint (docs/DESIGN.md §6) — and makes a memo whose
/// *claimed* order disagrees with its operator unrepresentable.
#[derive(Debug, Clone)]
pub struct PhysicalExpr {
    /// The operator.
    pub op: PhysicalOp,
    /// Cost of this operator alone (excluding children). Because child
    /// *cardinalities* are group-level estimates, the local cost is the
    /// same for every choice of child expressions — a plan's cost is the
    /// sum of its operators' local costs.
    pub local_cost: f64,
    /// Estimated output cardinality (a group-level property, duplicated
    /// here for convenient cost reporting).
    pub out_card: f64,
}

impl PhysicalExpr {
    /// Bundles an operator with its cost properties.
    pub fn new(op: PhysicalOp, local_cost: f64, out_card: f64) -> Self {
        PhysicalExpr {
            op,
            local_cost,
            out_card,
        }
    }

    /// The key columns of the sort order this operator guarantees on its
    /// output, major first (empty = no guarantee) — borrowed straight
    /// from the operator, so property checks on the link-materialization
    /// hot path allocate nothing.
    #[inline]
    pub fn delivered_cols(&self) -> &[ColRef] {
        match &self.op {
            PhysicalOp::TableScan { .. }
            | PhysicalOp::NestedLoopJoin { .. }
            | PhysicalOp::HashJoin { .. }
            | PhysicalOp::HashAgg { .. } => &[],
            PhysicalOp::SortedIdxScan { col, .. } => std::slice::from_ref(col),
            PhysicalOp::Sort { target } => target.cols(),
            PhysicalOp::MergeJoin { left_key, .. } => std::slice::from_ref(left_key),
            PhysicalOp::StreamAgg { group_order, .. } => group_order.cols(),
        }
    }

    /// The delivered order as an owned [`SortOrder`] (allocates for
    /// sorted operators; rendering/diagnostic convenience over
    /// [`delivered_cols`](Self::delivered_cols)).
    pub fn delivered(&self) -> SortOrder {
        SortOrder::on(self.delivered_cols().to_vec())
    }

    /// The operator's child slots, in input order. `own_group` is the
    /// group this expression lives in (needed by enforcers, whose child
    /// is their own group).
    pub fn child_slots(&self, own_group: GroupId) -> Vec<ChildSlot> {
        match &self.op {
            PhysicalOp::TableScan { .. } | PhysicalOp::SortedIdxScan { .. } => Vec::new(),
            PhysicalOp::Sort { target } => vec![ChildSlot {
                group: own_group,
                requirement: Requirement::SortInput {
                    target: target.clone(),
                },
            }],
            PhysicalOp::NestedLoopJoin { left, right } | PhysicalOp::HashJoin { left, right } => {
                vec![
                    ChildSlot {
                        group: *left,
                        requirement: Requirement::Order(SortOrder::unsorted()),
                    },
                    ChildSlot {
                        group: *right,
                        requirement: Requirement::Order(SortOrder::unsorted()),
                    },
                ]
            }
            PhysicalOp::MergeJoin {
                left,
                right,
                left_key,
                right_key,
            } => vec![
                ChildSlot {
                    group: *left,
                    requirement: Requirement::Order(SortOrder::on_col(*left_key)),
                },
                ChildSlot {
                    group: *right,
                    requirement: Requirement::Order(SortOrder::on_col(*right_key)),
                },
            ],
            PhysicalOp::HashAgg { input } => vec![ChildSlot {
                group: *input,
                requirement: Requirement::Order(SortOrder::unsorted()),
            }],
            PhysicalOp::StreamAgg { input, group_order } => vec![ChildSlot {
                group: *input,
                requirement: Requirement::Order(group_order.clone()),
            }],
        }
    }

    /// Heap bytes owned by this expression beyond its inline size (the
    /// sort-order key vectors of enforcer/stream-agg operators; every
    /// other operator owns no heap at all).
    pub fn heap_bytes(&self) -> usize {
        match &self.op {
            PhysicalOp::Sort { target } => target.heap_bytes(),
            PhysicalOp::StreamAgg { group_order, .. } => group_order.heap_bytes(),
            _ => 0,
        }
    }

    /// Number of children (the paper's `|v|`).
    pub fn arity(&self) -> usize {
        match &self.op {
            PhysicalOp::TableScan { .. } | PhysicalOp::SortedIdxScan { .. } => 0,
            PhysicalOp::Sort { .. } | PhysicalOp::HashAgg { .. } | PhysicalOp::StreamAgg { .. } => {
                1
            }
            PhysicalOp::NestedLoopJoin { .. }
            | PhysicalOp::HashJoin { .. }
            | PhysicalOp::MergeJoin { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(rel: u32, c: u32) -> ColRef {
        ColRef {
            rel: RelId(rel),
            col: c,
        }
    }

    #[test]
    fn names_and_classification() {
        let scan = PhysicalOp::TableScan { rel: RelId(0) };
        assert_eq!(scan.name(), "TableScan");
        assert!(scan.is_leaf());
        assert!(!scan.is_enforcer());
        let sort = PhysicalOp::Sort {
            target: SortOrder::on_col(col(0, 0)),
        };
        assert!(sort.is_enforcer());
        assert!(!sort.is_leaf());
    }

    #[test]
    fn leaf_has_no_slots() {
        let e = PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 1.0, 10.0);
        assert!(e.child_slots(GroupId(0)).is_empty());
        assert_eq!(e.arity(), 0);
    }

    #[test]
    fn join_slots_accept_anything() {
        let e = PhysicalExpr::new(
            PhysicalOp::HashJoin {
                left: GroupId(1),
                right: GroupId(2),
            },
            1.0,
            10.0,
        );
        let slots = e.child_slots(GroupId(3));
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].group, GroupId(1));
        assert_eq!(slots[1].group, GroupId(2));
        assert_eq!(
            slots[0].requirement,
            Requirement::Order(SortOrder::unsorted())
        );
        assert_eq!(e.arity(), 2);
    }

    #[test]
    fn merge_join_requires_orders() {
        let e = PhysicalExpr::new(
            PhysicalOp::MergeJoin {
                left: GroupId(1),
                right: GroupId(2),
                left_key: col(0, 0),
                right_key: col(1, 0),
            },
            1.0,
            10.0,
        );
        let slots = e.child_slots(GroupId(3));
        assert_eq!(
            slots[0].requirement,
            Requirement::Order(SortOrder::on_col(col(0, 0)))
        );
        assert_eq!(
            slots[1].requirement,
            Requirement::Order(SortOrder::on_col(col(1, 0)))
        );
    }

    #[test]
    fn sort_slot_points_at_own_group() {
        let target = SortOrder::on_col(col(0, 0));
        let e = PhysicalExpr::new(
            PhysicalOp::Sort {
                target: target.clone(),
            },
            1.0,
            10.0,
        );
        let slots = e.child_slots(GroupId(9));
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].group, GroupId(9));
        assert_eq!(slots[0].requirement, Requirement::SortInput { target });
        assert_eq!(e.arity(), 1);
    }

    #[test]
    fn stream_agg_requires_group_order() {
        let order = SortOrder::on(vec![col(0, 0), col(1, 0)]);
        let e = PhysicalExpr::new(
            PhysicalOp::StreamAgg {
                input: GroupId(4),
                group_order: order.clone(),
            },
            1.0,
            5.0,
        );
        let slots = e.child_slots(GroupId(5));
        assert_eq!(slots[0].group, GroupId(4));
        assert_eq!(slots[0].requirement, Requirement::Order(order));
    }
}
