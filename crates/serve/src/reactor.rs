//! A minimal readiness reactor over `poll(2)`, and the per-core event
//! loop built on it.
//!
//! The build environment has no crates.io, so instead of `mio`/`tokio`
//! this module declares the one libc entry point the event loop needs
//! (std already links libc on every Unix target) and wraps it in a
//! safe, allocation-reusing API ([`Poller`]). `poll` rather than
//! `epoll` keeps the wrapper portable across Unixes and branch-free to
//! reason about; at the few hundred connections each reactor targets,
//! the O(n) fd scan is far below the cost of the work behind each ready
//! fd.
//!
//! The crate-private `Reactor` is one thread-per-core event loop: it
//! owns a `Poller`, a connection map, a worker handoff (jobs channel +
//! completion queue + socketpair waker), and a mailbox of
//! freshly-accepted sockets the acceptor thread hands it. A server runs
//! N reactors (see `server::start`); a connection lives its whole life
//! on the reactor that adopted it, so no socket is ever shared between
//! threads. All cross-reactor coordination happens through the shared
//! `ServerState` atomics — including the global queue bound, claimed
//! with `ServerState::try_admit` so admission holds server-wide at any
//! reactor count.

use crate::conn::{Conn, ConnPhase};
use crate::server::{AcceptBackoff, AcceptVerdict, ACCEPT_ERROR_BACKOFF};
use crate::state::ServerState;
use crate::wire::{self, ErrorCode, Request, Response, WireError, CONNECTION_REQUEST_ID};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// `struct pollfd` from `poll(2)`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// What a registered fd is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or the peer hung up).
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// Readiness reported for one fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under this round.
    pub token: u64,
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket can accept writes without blocking.
    pub writable: bool,
    /// The fd is in an error/hangup state; close it.
    pub error: bool,
}

/// One round of readiness polling. The fd set is rebuilt every round
/// from the caller's connection table (`clear` + `register`), which
/// keeps registration trivially consistent with connection lifetimes —
/// no stale-fd bookkeeping, at the cost of an O(n) rebuild the fd scan
/// already pays.
#[derive(Debug, Default)]
pub struct Poller {
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
}

impl Poller {
    /// An empty poller.
    pub fn new() -> Self {
        Poller::default()
    }

    /// Drops every registration (start of a round).
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Registers `fd` under `token` for this round.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) {
        let mut events = 0;
        if interest.readable {
            events |= POLLIN;
        }
        if interest.writable {
            events |= POLLOUT;
        }
        self.fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait indefinitely), then returns the ready
    /// events. EINTR retries transparently.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<Vec<Event>> {
        let timeout_ms: c_int = match timeout {
            // Round up so a sub-millisecond deadline does not spin at 0.
            Some(t) => t.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as c_int,
            None => -1,
        };
        loop {
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        let events = self
            .fds
            .iter()
            .zip(&self.tokens)
            .filter(|(fd, _)| fd.revents != 0)
            .map(|(fd, &token)| Event {
                token,
                readable: fd.revents & (POLLIN | POLLHUP) != 0,
                writable: fd.revents & POLLOUT != 0,
                error: fd.revents & (POLLERR | POLLNVAL) != 0,
            })
            .collect();
        Ok(events)
    }
}

/// A request in flight to a reactor's worker pool.
pub(crate) struct Job {
    pub(crate) token: u64,
    pub(crate) request_id: u64,
    pub(crate) request: Request,
}

/// An encoded reply on its way back to its reactor.
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) payload: Vec<u8>,
}

/// Token a listener is registered under — the acceptor's shared
/// listener in its poll set, or this reactor's own `SO_REUSEPORT`
/// listener in the reactor's. Connection tokens start at
/// [`FIRST_CONN_TOKEN`] and are never reused, so 0 stays free for the
/// listener in both poll sets.
pub(crate) const TOKEN_LISTENER: u64 = 0;

/// Token the reactor's wake pipe is registered under.
pub(crate) const TOKEN_WAKER: u64 = 1;

/// First token handed to a connection.
pub(crate) const FIRST_CONN_TOKEN: u64 = 2;

/// Backoff after a failed `poll(2)` call, and how many consecutive
/// failures are tolerated before the loop gives up: a persistent error
/// (e.g. EINVAL from breaching the fd limit) must not spin the loop at
/// 100% CPU, and if it never clears the server shuts down rather than
/// hang unresponsively. The acceptor applies the same policy to
/// persistent `accept(2)` failures.
pub(crate) const POLL_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Consecutive `poll(2)` failures tolerated before giving up.
pub(crate) const MAX_POLL_ERRORS: u32 = 100;

/// Write ends of every event-loop thread's wake pipe (the acceptor
/// first, then each reactor). Any party declaring server-wide shutdown
/// pokes them all, so no thread stays parked in `poll(2)` holding the
/// shutdown back.
pub(crate) struct WakeSet(pub(crate) Vec<Mutex<UnixStream>>);

impl WakeSet {
    /// Writes one wake byte to every pipe. `WouldBlock` is ignored: a
    /// full pipe already guarantees the owner will wake.
    pub(crate) fn wake_all(&self) {
        for waker in &self.0 {
            if let Ok(mut w) = waker.lock() {
                let _ = w.write(&[1]);
            }
        }
    }
}

/// One thread-per-core event loop. See the module docs for how it
/// relates to the acceptor and its siblings.
pub(crate) struct Reactor {
    /// This reactor's index (selects its `ServerState::per_reactor`
    /// counter slice).
    pub(crate) index: usize,
    /// Read end of the wake pipe (workers and the acceptor poke it).
    pub(crate) wake_rx: UnixStream,
    /// Freshly-accepted sockets the acceptor handed this reactor,
    /// adopted at the top of every loop round.
    pub(crate) mailbox: Arc<Mutex<Vec<TcpStream>>>,
    /// This reactor's own `SO_REUSEPORT` listener, when the server
    /// runs in per-reactor-listener mode (`None` under the shared
    /// acceptor, whose mailbox then feeds `conns`).
    pub(crate) listener: Option<TcpListener>,
    /// Consecutive-`accept(2)`-failure policy for `listener`.
    pub(crate) accept_backoff: AcceptBackoff,
    pub(crate) conns: HashMap<u64, Conn>,
    pub(crate) next_token: u64,
    pub(crate) poller: Poller,
    pub(crate) state: Arc<ServerState>,
    pub(crate) jobs_tx: mpsc::Sender<Job>,
    pub(crate) completions: Arc<Mutex<Vec<Completion>>>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Every thread's waker, for declaring server-wide shutdown.
    pub(crate) wake_set: Arc<WakeSet>,
    pub(crate) frame_timeout: Duration,
    pub(crate) max_pipeline: usize,
    /// Time source for the slow-loris deadlines — `Instant::now` in
    /// production, a stepping fake in the deadline regression tests.
    pub(crate) clock: fn() -> Instant,
}

impl Reactor {
    pub(crate) fn run(mut self) {
        let mut poll_errors: u32 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            self.adopt_mailbox();
            self.drain_completions();
            self.reap();

            self.poller.clear();
            if let Some(listener) = &self.listener {
                self.poller
                    .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ);
            }
            self.poller
                .register(self.wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ);
            for (&token, conn) in &self.conns {
                self.poller.register(
                    conn.stream().as_raw_fd(),
                    token,
                    Interest {
                        readable: conn.wants_read(self.max_pipeline),
                        writable: conn.wants_write(),
                    },
                );
            }

            let timeout = self
                .nearest_deadline()
                .map(|deadline| deadline.saturating_duration_since((self.clock)()));
            let events = match self.poller.wait(timeout) {
                Ok(events) => {
                    poll_errors = 0;
                    events
                }
                Err(e) => {
                    poll_errors += 1;
                    if poll_errors >= MAX_POLL_ERRORS {
                        eprintln!(
                            "plansample-serve: poll(2) failed {poll_errors} times in a row \
                             ({e}); shutting down"
                        );
                        self.shutdown.store(true, Ordering::SeqCst);
                        self.wake_set.wake_all();
                        break;
                    }
                    std::thread::sleep(POLL_ERROR_BACKOFF);
                    continue;
                }
            };

            let now = (self.clock)();
            for event in events {
                match event.token {
                    TOKEN_LISTENER if self.listener.is_some() => {
                        if !self.accept_burst() {
                            return;
                        }
                    }
                    TOKEN_WAKER => self.drain_waker(),
                    token => {
                        if event.error {
                            self.close(token);
                            continue;
                        }
                        if event.writable {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                if !conn.flush() {
                                    self.close(token);
                                    continue;
                                }
                            }
                        }
                        if event.readable {
                            self.read_ready(token, now);
                        }
                    }
                }
            }
            self.enforce_frame_deadlines(now);
        }
        // Dropping the sender closes the job channel; this reactor's
        // workers exit.
    }

    /// Adopts every connection the acceptor queued on the mailbox.
    /// From here on the socket belongs to this reactor alone.
    fn adopt_mailbox(&mut self) {
        let adopted: Vec<TcpStream> = {
            let mut mailbox = self.mailbox.lock().expect("mailbox poisoned");
            std::mem::take(&mut *mailbox)
        };
        for stream in adopted {
            self.adopt(stream);
        }
    }

    /// Takes ownership of one socket, however it arrived (mailbox or
    /// this reactor's own listener).
    fn adopt(&mut self, stream: TcpStream) {
        let Ok(conn) = Conn::new(stream) else {
            return;
        };
        let token = self.next_token;
        self.next_token += 1;
        self.conns.insert(token, conn);
        self.state.connections_total.fetch_add(1, Ordering::Relaxed);
        self.state.connections_open.fetch_add(1, Ordering::Relaxed);
        self.state.per_reactor[self.index]
            .connections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Accepts from this reactor's own listener until `WouldBlock`,
    /// under the same persistent-failure policy as the acceptor
    /// thread. Returns `false` when that policy forced server-wide
    /// shutdown.
    fn accept_burst(&mut self) -> bool {
        loop {
            let Some(listener) = &self.listener else {
                return true;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff.on_success();
                    self.adopt(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.state.accept_errors.fetch_add(1, Ordering::Relaxed);
                    match self.accept_backoff.on_error() {
                        AcceptVerdict::Backoff => {
                            // The listener stays readable under
                            // level-triggered polling; without this
                            // sleep an EMFILE streak spins the loop.
                            std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                            return true;
                        }
                        AcceptVerdict::GiveUp => {
                            eprintln!(
                                "plansample-serve: reactor {} accept(2) failed {} times \
                                 in a row ({e}); shutting down",
                                self.index, self.accept_backoff.consecutive
                            );
                            self.shutdown.store(true, Ordering::SeqCst);
                            self.wake_set.wake_all();
                            return false;
                        }
                    }
                }
            }
        }
    }

    /// Moves finished replies into their connections' write buffers.
    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut queue = self.completions.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        for completion in done {
            self.state.release_inflight();
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                // The connection died with the request in flight; the
                // reply is dropped, never delivered to a reused token.
                continue;
            };
            conn.inflight -= 1;
            conn.queue_reply(&completion.payload);
            // Opportunistic flush: most replies fit the socket
            // buffer, so this saves a poll round trip per request.
            if !conn.flush() {
                self.close(completion.token);
                continue;
            }
            // The freed pipeline slot may expose complete frames that
            // are already buffered: a client that sent its whole burst
            // (or half-closed) produces no further POLLIN, so this is
            // the only place those frames can re-enter the parse loop.
            // The timestamp must be taken *here*, per completion: the
            // flushes above take real time, and arming a slow-loris
            // deadline with a timestamp captured before the drain began
            // would back-date the partial frame and close a legitimate
            // client early.
            let now = (self.clock)();
            self.parse_frames(completion.token, now);
        }
    }

    /// Closes connections that finished draining.
    fn reap(&mut self) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.phase == ConnPhase::Closed || c.drained())
            .map(|(&t, _)| t)
            .collect();
        for token in done {
            self.close(token);
        }
    }

    fn nearest_deadline(&self) -> Option<Instant> {
        self.conns
            .values()
            .filter_map(|c| c.frame_deadline())
            .map(|started| started + self.frame_timeout)
            .min()
    }

    fn enforce_frame_deadlines(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.frame_deadline().is_some_and(|started| {
                    now.saturating_duration_since(started) >= self.frame_timeout
                })
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            // Slow-loris: the partial frame never completed in time.
            self.close(token);
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    fn read_ready(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let alive = conn.fill();
        if !alive {
            // EOF (or read error): no more input will arrive, but every
            // request already buffered is still served and flushed
            // before the connection closes (see `Conn::drained`).
            conn.eof = true;
        }
        self.parse_frames(token, now);
    }

    /// Decodes every complete frame buffered on `token`, enforcing the
    /// pipeline and queue bounds and the wire error policy.
    fn parse_frames(&mut self, token: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.phase != ConnPhase::Open || conn.inflight >= self.max_pipeline {
                return;
            }
            let payload = match conn.next_frame(now) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(e) => {
                    // Framing poisoned: typed reply, then drain.
                    self.state.wire_errors.fetch_add(1, Ordering::Relaxed);
                    let reply = wire_error_reply(&e);
                    conn.queue_reply(&reply.encode(CONNECTION_REQUEST_ID));
                    conn.phase = ConnPhase::Draining;
                    return;
                }
            };
            self.handle_payload(token, &payload);
        }
    }

    fn handle_payload(&mut self, token: u64, payload: &[u8]) {
        let header = wire::decode_header(payload);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let (_, request_id) = match header {
            Ok(pair) => pair,
            Err(e) => {
                self.state.wire_errors.fetch_add(1, Ordering::Relaxed);
                let recoverable = e.is_recoverable();
                conn.queue_reply(&wire_error_reply(&e).encode(CONNECTION_REQUEST_ID));
                if !recoverable {
                    conn.phase = ConnPhase::Draining;
                }
                return;
            }
        };
        match Request::decode(payload) {
            Ok((request_id, request)) => {
                // Decoded requests are counted whether they are then
                // admitted or shed, so `requests` always equals
                // `requests_admitted + shed_queue` at quiescence.
                self.state.requests.fetch_add(1, Ordering::Relaxed);
                self.state.per_reactor[self.index]
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                if !self.state.try_admit() {
                    // Queue bound (global, across every reactor): shed
                    // instead of queueing unboundedly.
                    self.state.shed_queue.fetch_add(1, Ordering::Relaxed);
                    let reply = Response::error(
                        ErrorCode::Overloaded,
                        format!("request queue at its {} bound", self.state.max_inflight()),
                    );
                    conn.queue_reply(&reply.encode(request_id));
                    return;
                }
                conn.inflight += 1;
                // The receiver outlives the loop (workers hold it);
                // send cannot fail until shutdown, where replies are
                // moot anyway.
                let _ = self.jobs_tx.send(Job {
                    token,
                    request_id,
                    request,
                });
            }
            Err(e) => {
                // The frame was well-delimited but the body was not a
                // request: typed reply, connection keeps serving.
                self.state.wire_errors.fetch_add(1, Ordering::Relaxed);
                conn.queue_reply(&wire_error_reply(&e).encode(request_id));
            }
        }
    }

    fn close(&mut self, token: u64) {
        if self.conns.remove(&token).is_some() {
            self.state.connections_open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The typed reply for a frame that failed to decode.
pub(crate) fn wire_error_reply(e: &WireError) -> Response {
    let code = match e {
        WireError::Oversized(_) => ErrorCode::Oversized,
        WireError::BadVersion(_) => ErrorCode::BadVersion,
        WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        _ => ErrorCode::BadRequest,
    };
    Response::error(code, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readability_on_a_socketpair() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), 7, Interest::READ);
        // Nothing written yet: times out with no events.
        let events = poller.wait(Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        a.write_all(b"x").unwrap();
        let events = poller.wait(Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn reports_hangup_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), 1, Interest::READ);
        let events = poller.wait(Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "EOF must wake the reader");
    }

    thread_local! {
        static BASE: std::cell::OnceCell<Instant> = const { std::cell::OnceCell::new() };
        static TICKS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// A deterministic clock advancing one millisecond per reading, so
    /// the test can observe *which call site* took the timestamp — the
    /// stale-deadline bug is invisible to a wall clock because the
    /// staleness window is microseconds.
    fn stepping_clock() -> Instant {
        let base = BASE.with(|b| *b.get_or_init(Instant::now));
        let n = TICKS.with(|t| {
            let n = t.get();
            t.set(n + 1);
            n
        });
        base + Duration::from_millis(n)
    }

    /// Regression test: `drain_completions` used to capture one
    /// `Instant::now()` before iterating and re-enter `parse_frames`
    /// with it for every completion, so a partial frame exposed after a
    /// slow flush armed its slow-loris deadline with a stale (earlier)
    /// timestamp — back-dating the client toward an early close. The
    /// fix takes a fresh reading per completion; under the stepping
    /// clock the second connection's deadline must therefore be
    /// strictly later than the first's, where the stale code stamps
    /// them identically.
    #[test]
    fn drain_completions_stamps_each_reentry_freshly() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let setup = |token: u64, reactor: &mut Reactor| -> TcpStream {
            let mut client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            // One complete frame (so the parse loop consumes something
            // and re-arms the deadline from `now`) followed by the head
            // of a partial one.
            client
                .write_all(&wire::frame(&Request::Stats.encode(token)))
                .unwrap();
            client.write_all(&8u32.to_le_bytes()).unwrap();
            client.write_all(b"par").unwrap();
            client.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20)); // let it land
            let mut conn = Conn::new(server_side).unwrap();
            // Pipeline bound already reached: `read_ready` buffers the
            // bytes but parses nothing, arming no deadline yet.
            conn.inflight = 1;
            reactor.conns.insert(token, conn);
            reactor.read_ready(token, Instant::now());
            assert!(
                reactor.conns[&token].frame_deadline().is_none(),
                "setup must leave the deadline unarmed"
            );
            client // hold the peer open for the caller
        };

        let state = Arc::new(ServerState::new(
            plansample_optimizer::OptimizerConfig::default(),
            4,
            None,
            crate::state::AdmissionConfig::default(),
            1,
        ));
        let (_wake_tx, wake_rx) = UnixStream::pair().unwrap();
        let (jobs_tx, _jobs_rx) = mpsc::channel();
        let mut reactor = Reactor {
            index: 0,
            wake_rx,
            mailbox: Arc::new(Mutex::new(Vec::new())),
            listener: None,
            accept_backoff: AcceptBackoff::default(),
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            poller: Poller::new(),
            state: Arc::clone(&state),
            jobs_tx,
            completions: Arc::new(Mutex::new(Vec::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            wake_set: Arc::new(WakeSet(Vec::new())),
            frame_timeout: Duration::from_secs(10),
            max_pipeline: 1,
            clock: stepping_clock,
        };
        let _clients = (setup(2, &mut reactor), setup(3, &mut reactor));

        // Both requests were admitted before their replies completed.
        assert!(state.try_admit());
        assert!(state.try_admit());
        let reply = Response::error(ErrorCode::BadRequest, "x").encode(7);
        reactor
            .completions
            .lock()
            .unwrap()
            .extend([2u64, 3u64].map(|token| Completion {
                token,
                payload: reply.clone(),
            }));

        reactor.drain_completions();

        let deadline = |token: u64| {
            reactor.conns[&token]
                .frame_deadline()
                .expect("partial frame must arm the deadline")
        };
        assert!(
            deadline(3) > deadline(2),
            "each completion must re-stamp `now` at its own re-entry; \
             equal deadlines mean one stale timestamp served the whole drain"
        );
    }
}
