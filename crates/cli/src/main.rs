//! `plansample` binary entry point; all logic lives in the library for
//! testability.

use std::error::Error as _;

fn main() {
    let cli = match plansample_cli::parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match plansample_cli::run(&cli) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            // Print the full cause chain: the top-level error names the
            // failing stage, its sources carry the specifics.
            eprintln!("error: {e}");
            let mut source = e.source();
            while let Some(cause) = source {
                eprintln!("  caused by: {cause}");
                source = cause.source();
            }
            std::process::exit(1);
        }
    }
}
