//! The prepared-query artifact: optimize once, query forever.
//!
//! The paper's central observation is that counting, enumerating, and
//! sampling are cheap *once the MEMO is built* — the expensive steps
//! (optimization, link materialization, counting) happen exactly once.
//! [`PreparedQuery`] reifies that split into the API: it bundles the
//! optimized memo, the query, the materialized links and counts, and the
//! optimizer's best plan into one owned, immutable, `Send + Sync`
//! artifact. Wrap it in an [`std::sync::Arc`] and any number of threads
//! can count, unrank, page, and sample concurrently with zero
//! re-optimization and zero locking.

use crate::{Error, PlanBatch, PlanCursor, PlanSpace, SpaceError};
use plansample_bignum::Nat;
use plansample_catalog::Catalog;
use plansample_memo::{satisfies_cols, Memo, PhysId, PlanNode, SortOrder};
use plansample_optimizer::{optimize, Optimized, OptimizerConfig};
use plansample_query::{ColRef, QuerySpec};
use rand::Rng;
use std::sync::Arc;

/// An owned, shareable, fully prepared query: the complete paper surface
/// (count / rank / unrank / enumerate / sample, whole-space and
/// sub-space) without ever re-optimizing.
///
/// Produced by [`PreparedQuery::prepare`] or
/// [`crate::session::Session::prepare`]. The artifact is immutable and
/// `Send + Sync`; sampling takes the caller's RNG by `&mut`, so
/// concurrent threads each bring their own RNG and share the artifact
/// itself through an [`Arc`] (see `tests/concurrency.rs` and
/// [`crate::service::PlanService`]).
///
/// ```
/// use plansample::PreparedQuery;
/// use plansample_bignum::Nat;
/// use plansample_optimizer::OptimizerConfig;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let (catalog, _) = plansample_catalog::tpch::catalog();
/// let query = plansample_query::tpch::q5(&catalog);
/// let prepared = PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap();
///
/// // All of these reuse the one memo built above:
/// assert!(prepared.total().to_f64() > 1e6);
/// let mut rng = StdRng::seed_from_u64(7);
/// let batch = prepared.sample_batch(&mut rng, 100);
/// assert_eq!(batch.len(), 100);
/// let (best, cost) = prepared.best();
/// assert!((prepared.scaled_cost(best) - 1.0).abs() < 1e-9 && cost > 0.0);
/// let page: Vec<_> = prepared.enumerate_from(Nat::from(1_000u64)).take(5).collect();
/// assert_eq!(prepared.rank(&page[0]).unwrap(), Nat::from(1_000u64));
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    space: PlanSpace,
    best_plan: PlanNode,
    best_cost: f64,
    config: OptimizerConfig,
}

impl PreparedQuery {
    /// Runs the optimizer once and post-processes its memo into the
    /// owned artifact — the only expensive call in this type's API.
    pub fn prepare(
        catalog: &Catalog,
        query: &QuerySpec,
        config: &OptimizerConfig,
    ) -> Result<Self, Error> {
        let optimized = optimize(catalog, query, config)?;
        PreparedQuery::from_optimized(optimized, Arc::new(query.clone()), config.clone())
    }

    /// Builds the artifact from an already-run optimization, taking
    /// ownership of the memo without copying it.
    pub fn from_optimized(
        optimized: Optimized,
        query: Arc<QuerySpec>,
        config: OptimizerConfig,
    ) -> Result<Self, Error> {
        let Optimized {
            memo,
            best_plan,
            best_cost,
        } = optimized;
        let space = PlanSpace::build_shared(Arc::new(memo), query)?;
        Ok(PreparedQuery {
            space,
            best_plan,
            best_cost,
            config,
        })
    }

    /// Reassembles the artifact from an already-validated plan space
    /// plus the optimizer's best plan and cost — the artifact load
    /// path (see `plansample-artifact`). The best plan is checked
    /// structurally against the memo (every node resolves, every
    /// node's child count matches its operator's arity) so a corrupt
    /// plan section cannot smuggle out-of-range indices past the
    /// panicking accessors.
    pub fn from_parts(
        space: PlanSpace,
        best_plan: PlanNode,
        best_cost: f64,
        config: OptimizerConfig,
    ) -> Result<Self, SpaceError> {
        let malformed = |reason: &str| SpaceError::MalformedParts {
            reason: reason.to_string(),
        };
        if !best_cost.is_finite() || best_cost <= 0.0 {
            return Err(malformed("best cost must be finite and positive"));
        }
        let memo = space.memo();
        let mut stack = vec![&best_plan];
        while let Some(node) = stack.pop() {
            if node.id.group.0 as usize >= memo.num_groups() {
                return Err(malformed("best plan references a group out of range"));
            }
            let group = memo.group(node.id.group);
            if node.id.index >= group.phys_iter().count() {
                return Err(malformed("best plan references an expression out of range"));
            }
            if node.children.len() != memo.phys(node.id).arity() {
                return Err(malformed("best plan child count must match operator arity"));
            }
            stack.extend(&node.children);
        }
        Ok(PreparedQuery {
            space,
            best_plan,
            best_cost,
            config,
        })
    }

    /// Whether `plan`'s root operator delivers rows in the order
    /// `cols` demands — the `ORDER BY` validation used by the SQL
    /// front end. Empty `cols` is trivially satisfied; otherwise the
    /// plan root's delivered columns are checked against the
    /// requirement under the query's whole-scope column equivalences
    /// (a `MergeJoin` on `a.x = b.y` delivering `a.x` satisfies
    /// `ORDER BY b.y`).
    pub fn satisfies_order(&self, plan: &PlanNode, cols: &[ColRef]) -> bool {
        if cols.is_empty() {
            return true;
        }
        let query = self.query();
        let delivered = self.memo().phys(plan.id).delivered_cols();
        satisfies_cols(
            query,
            query.all_rels(),
            delivered,
            &SortOrder::on(cols.to_vec()),
        )
    }

    /// `N`: the exact number of complete execution plans.
    pub fn total(&self) -> &Nat {
        self.space.total()
    }

    /// `N(v)`: plans rooted in a particular expression.
    pub fn count_rooted(&self, id: PhysId) -> &Nat {
        self.space.count_rooted(id)
    }

    /// The optimizer's chosen plan and its total cost — the paper's
    /// cost-1.0 reference point.
    pub fn best(&self) -> (&PlanNode, f64) {
        (&self.best_plan, self.best_cost)
    }

    /// Cost of the optimizer's plan.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// A plan's total cost scaled so the optimizer's plan is 1.0 (the
    /// paper's §5 cost unit).
    pub fn scaled_cost(&self, plan: &PlanNode) -> f64 {
        plan.total_cost(self.memo()) / self.best_cost
    }

    /// Builds plan number `rank` (0-based, `rank < total()`).
    pub fn unrank(&self, rank: &Nat) -> Result<PlanNode, Error> {
        Ok(self.space.unrank(rank)?)
    }

    /// The rank of `plan` within this space (inverse of
    /// [`unrank`](Self::unrank)).
    pub fn rank(&self, plan: &PlanNode) -> Result<Nat, Error> {
        Ok(self.space.rank(plan)?)
    }

    /// Builds plan number `rank` within the sub-space rooted at `v`.
    pub fn unrank_rooted(&self, v: PhysId, rank: &Nat) -> Result<PlanNode, Error> {
        Ok(self.space.unrank_rooted(v, rank)?)
    }

    /// The rank of `plan` within the sub-space rooted at its own root
    /// expression.
    pub fn rank_rooted(&self, plan: &PlanNode) -> Result<Nat, Error> {
        Ok(self.space.rank_rooted(plan)?)
    }

    /// Draws one plan uniformly from the space.
    ///
    /// # Panics
    /// Panics if the space is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PlanNode {
        self.space.sample(rng)
    }

    /// Draws `k` plans uniformly and independently (with replacement) —
    /// the batched serving path.
    ///
    /// # Panics
    /// Panics if `k > 0` and the space is empty.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<PlanNode> {
        self.space.sample_batch(rng, k)
    }

    /// Draws `k` plans uniformly into a reusable flat batch — the
    /// zero-allocation serving path, running on the fastest unranking
    /// tier the space qualifies for (see
    /// [`PlanSpace::sample_batch_flat`] and [`tier`](Self::tier)).
    /// Bit-identical content to [`sample_batch`](Self::sample_batch) on
    /// the same seed, at every tier and thread count.
    ///
    /// # Panics
    /// Panics if `k > 0` and the space is empty.
    pub fn sample_batch_flat<R: Rng + ?Sized>(&self, rng: &mut R, k: usize, out: &mut PlanBatch) {
        self.space.sample_batch_flat(rng, k, out);
    }

    /// Which rung of the fixed-width tier ladder (`u64` → `u128` →
    /// exact `Nat`) this query's flat sampler runs on — a throughput
    /// property only; sampled content is tier-independent.
    pub fn tier(&self) -> crate::CountTier {
        self.space.counts().tier()
    }

    /// [`scaled_cost`](Self::scaled_cost) for a flat preorder id
    /// sequence (a [`PlanBatch`] entry): a plan's total cost is the sum
    /// of its operators' local costs, so no tree needs rebuilding.
    ///
    /// The sum is evaluated bottom-up with the exact association of
    /// [`PlanNode::total_cost`](plansample_memo::PlanNode::total_cost)
    /// — local cost plus the left-to-right sum of child subtree totals
    /// — so the result is bit-identical to the tree path, not merely
    /// within a ULP (the serve crate asserts reply byte-identity).
    pub fn scaled_cost_ids(&self, ids: &[PhysId]) -> f64 {
        let memo = self.memo();
        let mut totals: Vec<f64> = Vec::with_capacity(ids.len().min(64));
        for &id in ids.iter().rev() {
            let expr = memo.phys(id);
            // Reverse preorder pushes the leftmost child's total last,
            // so draining back-to-front restores left-to-right order.
            let start = totals.len() - expr.arity();
            let children: f64 = totals.drain(start..).rev().sum();
            totals.push(expr.local_cost + children);
        }
        debug_assert_eq!(totals.len(), 1, "preorder did not form one tree");
        totals[0] / self.best_cost
    }

    /// Uniform sample from the sub-space rooted at `v`.
    ///
    /// # Panics
    /// Panics when the sub-space is empty (`count_rooted(v) == 0`).
    pub fn sample_rooted<R: Rng + ?Sized>(&self, rng: &mut R, v: PhysId) -> PlanNode {
        self.space.sample_rooted(rng, v)
    }

    /// Streams every plan in rank order.
    pub fn enumerate(&self) -> PlanCursor<'_> {
        self.space.enumerate()
    }

    /// Streams plans in rank order starting at `rank` — resumable
    /// pagination over the space (see [`PlanCursor`]).
    pub fn enumerate_from(&self, rank: Nat) -> PlanCursor<'_> {
        self.space.enumerate_from(rank)
    }

    /// Bytes of memory held by this artifact: the plan space's flat link
    /// and count buffers, the shared memo, and the best plan.
    ///
    /// The value the serving layer's byte-budget eviction charges per
    /// cached entry (see [`crate::service::PlanService`]).
    pub fn size_bytes(&self) -> usize {
        self.space.size_bytes() + self.best_plan.size_bytes() + std::mem::size_of::<Self>()
            - std::mem::size_of::<PlanSpace>()
            - std::mem::size_of::<PlanNode>()
    }

    /// The underlying plan space, for the full low-level surface
    /// (analysis, validation, naive-walk baseline, …).
    pub fn space(&self) -> &PlanSpace {
        &self.space
    }

    /// The optimized memo.
    pub fn memo(&self) -> &Memo {
        self.space.memo()
    }

    /// The query this artifact was prepared for.
    pub fn query(&self) -> &QuerySpec {
        self.space.query()
    }

    /// Shared handle to the query.
    pub fn query_shared(&self) -> &Arc<QuerySpec> {
        self.space.query_shared()
    }

    /// The optimizer configuration the artifact was prepared under.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prepared_3way() -> PreparedQuery {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let mut qb = plansample_query::QueryBuilder::new(&catalog);
        qb.rel("nation", Some("n")).unwrap();
        qb.rel("region", Some("r")).unwrap();
        qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
        let query = qb.build().unwrap();
        PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap()
    }

    #[test]
    fn prepare_exposes_the_full_surface_without_reoptimizing() {
        let before = plansample_optimizer::thread_optimizations_performed();
        let p = prepared_3way();
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed() - before,
            1,
            "prepare optimizes exactly once"
        );

        let n = p.total().to_u64().unwrap();
        assert!(n >= 4);
        let mut rng = StdRng::seed_from_u64(3);
        let batch = p.sample_batch(&mut rng, 50);
        assert_eq!(batch.len(), 50);
        for plan in &batch {
            let r = p.rank(plan).unwrap();
            assert_eq!(p.unrank(&r).unwrap(), *plan);
        }
        let (best, cost) = p.best();
        assert!(cost > 0.0);
        assert!((p.scaled_cost(best) - 1.0).abs() < 1e-9);
        assert_eq!(p.enumerate().count() as u64, n);
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed() - before,
            1,
            "no serving operation re-optimizes"
        );
    }

    #[test]
    fn from_optimized_takes_ownership_without_copying() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let query = Arc::new(plansample_query::tpch::q6(&catalog));
        let config = OptimizerConfig::default();
        let optimized = optimize(&catalog, &query, &config).unwrap();
        let n_phys = optimized.memo.num_physical();
        let p = PreparedQuery::from_optimized(optimized, Arc::clone(&query), config).unwrap();
        assert_eq!(p.memo().num_physical(), n_phys);
        assert!(Arc::ptr_eq(p.query_shared(), &query));
    }

    #[test]
    fn rooted_operations_are_exposed() {
        let p = prepared_3way();
        let root = p.memo().root();
        let (v, _) = p.memo().group(root).phys_iter().next().unwrap();
        let nv = p.count_rooted(v).clone();
        assert!(!nv.is_zero());
        let plan = p.unrank_rooted(v, &Nat::zero()).unwrap();
        assert_eq!(plan.id, v);
        assert_eq!(p.rank_rooted(&plan).unwrap(), Nat::zero());
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(p.sample_rooted(&mut rng, v).id, v);
    }
}
