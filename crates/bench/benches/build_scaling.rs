//! Experiment E10 — the flat plan-space layout, measured.
//!
//! `PlanSpace::build` (link materialization §3.1 + counting §3.2) was
//! refactored from nested `Vec`s + recursive memoized counting onto a
//! flat CSR arena with interned alternative lists, dense `u32`
//! expression ids, and an iterative count over a precomputed topological
//! order. This bench keeps the *pre-refactor layout alive as a reference
//! implementation* (`legacy` module below, a faithful reconstruction of
//! the old `Links`/`Counts` code) and measures both on the same memos:
//!
//! * the paper's largest space (Q8 + cross products, ~22k physical
//!   expressions), and
//! * directly synthesized 10–12-relation join graphs — the regime the
//!   plan-enumeration literature treats as interesting — where counts
//!   need multiple `u64` limbs.
//!
//! Five acceptance checks are **asserted** so layout regressions fail CI
//! (the `bench-smoke` job runs this bench in release, at both
//! `PLANSAMPLE_THREADS=1` and `=4`):
//!
//! 1. the flat build is ≥ 5× faster than the legacy layout on Q8+CP and
//!    produces bit-identical totals;
//! 2. the prepared Q8+CP space fits in ≤ 120 bytes per physical
//!    expression (inline-`Nat` counts + derived delivered orders +
//!    shrunken memo; was 216 bytes/expr before the memory refactor);
//! 3. a clique-10 synthetic space (~700k expressions) builds, counts a
//!    multi-limb total, and round-trips ranks at its boundaries;
//! 4. on machines with ≥ 4 cores, the parallel build is ≥ 2× faster at
//!    4 threads than at 1 thread on that clique-10 memo (skipped — with
//!    a notice — where the hardware cannot exhibit a speedup);
//! 5. loading the clique-10 plan space from a persistent artifact
//!    (`plansample-artifact`) is ≥ 20× faster than cold preparation and
//!    answers `total`/`best`/`unrank` bit-identically.
//!
//! Measured numbers are recorded in `docs/EXPERIMENTS.md` §E10.

use criterion::{criterion_group, criterion_main, Criterion};
use plansample::PlanSpace;
use plansample_bench::prepare;
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use std::sync::Arc;
use std::time::Instant;

/// The pre-refactor plan-space layout: `[group][expr][slot] →
/// alternatives` nested `Vec`s, a per-edge three-colour cycle check, and
/// a recursive count that clones on every memo-cache hit. Kept verbatim
/// (modulo the removed types) as the measured baseline.
mod legacy {
    use plansample_bignum::Nat;
    use plansample_memo::{satisfies_cols, ChildSlot, Memo, PhysId, Requirement};
    use plansample_query::QuerySpec;

    /// The old `eligible_children` shape: one `satisfies` call per
    /// candidate, each rebuilding the scope's column-equivalence classes
    /// when the syntactic check fails (the per-candidate cost the
    /// refactor hoisted to once per slot — and interning then reduced to
    /// once per *distinct* slot).
    fn eligible_children(memo: &Memo, query: &QuerySpec, slot: &ChildSlot) -> Vec<PhysId> {
        let group = memo.group(slot.group);
        let scope = group.scope(query);
        group
            .phys_iter()
            .filter(|(_, e)| match &slot.requirement {
                Requirement::Order(req) => satisfies_cols(query, scope, e.delivered_cols(), req),
                Requirement::SortInput { target } => {
                    !e.op.is_enforcer() && !satisfies_cols(query, scope, e.delivered_cols(), target)
                }
            })
            .map(|(id, _)| id)
            .collect()
    }

    pub struct Links {
        slots: Vec<Vec<Vec<Vec<PhysId>>>>,
    }

    impl Links {
        pub fn build(memo: &Memo, query: &QuerySpec) -> Links {
            let slots: Vec<Vec<Vec<Vec<PhysId>>>> = memo
                .groups()
                .map(|group| {
                    group
                        .phys_iter()
                        .map(|(id, expr)| {
                            expr.child_slots(id.group)
                                .iter()
                                .map(|slot| eligible_children(memo, query, slot))
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let links = Links { slots };
            links.check_acyclic(memo);
            links
        }

        pub fn children(&self, id: PhysId) -> &[Vec<PhysId>] {
            &self.slots[id.group.0 as usize][id.index]
        }

        fn check_acyclic(&self, memo: &Memo) {
            #[derive(Clone, Copy, PartialEq)]
            enum Colour {
                White,
                Grey,
                Black,
            }
            let mut colour: Vec<Vec<Colour>> = memo
                .groups()
                .map(|g| vec![Colour::White; g.physical.len()])
                .collect();
            let all: Vec<PhysId> = memo
                .groups()
                .flat_map(|g| g.phys_iter().map(|(id, _)| id))
                .collect();
            for start in all {
                if colour[start.group.0 as usize][start.index] != Colour::White {
                    continue;
                }
                let mut stack: Vec<(PhysId, usize, usize)> = vec![(start, 0, 0)];
                colour[start.group.0 as usize][start.index] = Colour::Grey;
                while let Some(&mut (id, ref mut slot, ref mut alt)) = stack.last_mut() {
                    let slots = self.children(id);
                    if *slot >= slots.len() {
                        colour[id.group.0 as usize][id.index] = Colour::Black;
                        stack.pop();
                        continue;
                    }
                    if *alt >= slots[*slot].len() {
                        *slot += 1;
                        *alt = 0;
                        continue;
                    }
                    let child = slots[*slot][*alt];
                    *alt += 1;
                    match colour[child.group.0 as usize][child.index] {
                        Colour::White => {
                            colour[child.group.0 as usize][child.index] = Colour::Grey;
                            stack.push((child, 0, 0));
                        }
                        Colour::Grey => panic!("cyclic memo in legacy baseline"),
                        Colour::Black => {}
                    }
                }
            }
        }
    }

    pub struct Counts {
        per_expr: Vec<Vec<Nat>>,
        total: Nat,
    }

    impl Counts {
        pub fn compute(memo: &Memo, links: &Links) -> Counts {
            let mut per_expr: Vec<Vec<Option<Nat>>> = memo
                .groups()
                .map(|g| vec![None; g.physical.len()])
                .collect();
            for group in memo.groups() {
                for (id, _) in group.phys_iter() {
                    count_rec(links, id, &mut per_expr);
                }
            }
            let per_expr: Vec<Vec<Nat>> = per_expr
                .into_iter()
                .map(|v| v.into_iter().map(|c| c.expect("all visited")).collect())
                .collect();
            let root = memo.root();
            let total = per_expr[root.0 as usize].iter().sum();
            Counts { per_expr, total }
        }

        pub fn total(&self) -> &Nat {
            &self.total
        }

        pub fn rooted(&self, id: PhysId) -> &Nat {
            &self.per_expr[id.group.0 as usize][id.index]
        }
    }

    fn count_rec(links: &Links, id: PhysId, cache: &mut [Vec<Option<Nat>>]) -> Nat {
        if let Some(n) = &cache[id.group.0 as usize][id.index] {
            return n.clone();
        }
        let slots = links.children(id);
        let n = if slots.is_empty() {
            Nat::one()
        } else {
            let mut product = Nat::one();
            for alternatives in slots {
                let b: Nat = alternatives
                    .iter()
                    .map(|&w| count_rec(links, w, cache))
                    .sum();
                product = product * b;
            }
            product
        };
        cache[id.group.0 as usize][id.index] = Some(n.clone());
        n
    }
}

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_build_scaling(c: &mut Criterion) {
    // --- Q8 + cross products (the paper's largest memo) and clique-6. ---
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let q8 = prepare(
        &catalog,
        "Q8_CP",
        plansample_query::tpch::q8(&catalog),
        true,
    );
    let memo = Arc::clone(q8.space().memo_shared());
    let query = Arc::clone(q8.space().query_shared());

    let clique6 = {
        let (catalog, query) = JoinGraphSpec::new(Topology::Clique, 6, 42).build();
        plansample::PreparedQuery::prepare(
            &catalog,
            &query,
            &plansample_optimizer::OptimizerConfig::default(),
        )
        .expect("clique-6 optimizes")
    };

    for (label, memo, query) in [
        ("Q8_CP", &memo, &query),
        (
            "clique6",
            clique6.space().memo_shared(),
            clique6.space().query_shared(),
        ),
    ] {
        let mut group = c.benchmark_group(format!("build_layout/{label}"));
        group.sample_size(10);
        group.bench_function("flat", |b| {
            b.iter(|| {
                let space = PlanSpace::build_shared(Arc::clone(memo), Arc::clone(query)).unwrap();
                std::hint::black_box(space.total().clone())
            })
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let links = legacy::Links::build(memo, query);
                let counts = legacy::Counts::compute(memo, &links);
                std::hint::black_box(counts.total().clone())
            })
        });
        group.finish();
    }

    // --- Synthetic 10–12-relation join graphs, built directly. ----------
    let mut group = c.benchmark_group("build_scaling/synthetic");
    group.sample_size(10);
    for spec in [
        JoinGraphSpec::new(Topology::Cycle, 12, 20000),
        JoinGraphSpec::new(Topology::Star, 11, 20000),
        JoinGraphSpec::new(Topology::Clique, 10, 20000),
    ] {
        let (_, query, memo) = spec.build_memo();
        let (memo, query) = (Arc::new(memo), Arc::new(query));
        group.bench_function(
            format!("{} ({} exprs)", spec.label(), memo.num_physical()),
            |b| {
                b.iter(|| {
                    let space =
                        PlanSpace::build_shared(Arc::clone(&memo), Arc::clone(&query)).unwrap();
                    std::hint::black_box(space.total().clone())
                })
            },
        );
    }
    group.finish();

    // --- Acceptance assertion 1: ≥ 5× on Q8+CP, identical results. ------
    let runs = 7;
    let flat_secs = median_secs(
        (0..runs)
            .map(|_| {
                let t = Instant::now();
                let space = PlanSpace::build_shared(Arc::clone(&memo), Arc::clone(&query)).unwrap();
                std::hint::black_box(space.total().clone());
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let legacy_secs = median_secs(
        (0..runs)
            .map(|_| {
                let t = Instant::now();
                let links = legacy::Links::build(&memo, &query);
                let counts = legacy::Counts::compute(&memo, &links);
                std::hint::black_box(counts.total().clone());
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let space = PlanSpace::build_shared(Arc::clone(&memo), Arc::clone(&query)).unwrap();
    let legacy_links = legacy::Links::build(&memo, &query);
    let legacy_counts = legacy::Counts::compute(&memo, &legacy_links);
    assert_eq!(
        space.total(),
        legacy_counts.total(),
        "flat and legacy layouts must count identically"
    );
    for id in space.links().all_ids() {
        assert_eq!(
            space.count_rooted(id),
            legacy_counts.rooted(id),
            "count of {id} diverged"
        );
    }
    let speedup = legacy_secs / flat_secs.max(1e-12);
    let per_expr = flat_secs * 1e9 / memo.num_physical() as f64;
    println!(
        "build_layout/Q8_CP: flat {:.2} ms vs legacy {:.2} ms ({speedup:.1}x, {per_expr:.0} ns/expr, \
         {} bytes, {:.1} bytes/expr)",
        flat_secs * 1e3,
        legacy_secs * 1e3,
        space.size_bytes(),
        space.size_bytes() as f64 / memo.num_physical() as f64,
    );
    assert!(
        speedup >= 5.0,
        "flat layout must build >= 5x faster than the legacy layout on Q8+CP; \
         measured {speedup:.1}x"
    );

    // --- Acceptance assertion 2: <= 120 bytes/expr on Q8+CP. ------------
    // The memory refactor's contract: inline-`Nat` counts, derived
    // delivered orders, and the shrunken memo bring the whole prepared
    // space (links + counts + memo) under 120 bytes per physical
    // expression (216 before; docs/EXPERIMENTS.md §E10).
    let bytes_per_expr = space.size_bytes() as f64 / memo.num_physical() as f64;
    assert!(
        bytes_per_expr <= 120.0,
        "prepared Q8+CP space must stay <= 120 bytes/expr; measured {bytes_per_expr:.1}"
    );

    // --- Acceptance assertion 3: clique-10 multi-limb round trip. -------
    let spec = JoinGraphSpec::new(Topology::Clique, 10, 20000);
    let t = Instant::now();
    let (_, query, memo) = spec.build_memo();
    let synth_memo = t.elapsed();
    let (memo, query) = (Arc::new(memo), Arc::new(query));
    let t = Instant::now();
    let space = PlanSpace::build_shared(Arc::clone(&memo), Arc::clone(&query)).unwrap();
    let synth_build = t.elapsed();
    assert!(
        space.total().limbs().len() >= 2,
        "clique-10 total must exceed u64: {}",
        space.total()
    );
    let mut last = space.total().clone();
    last.decr();
    for rank in [Nat::zero(), last] {
        let plan = space.unrank(&rank).unwrap();
        assert_eq!(&space.rank(&plan).unwrap(), &rank, "clique-10 round trip");
    }
    println!(
        "build_scaling/clique-10: {} exprs, N = {} ({} limbs), memo {synth_memo:.2?}, \
         space {synth_build:.2?}, {:.1} bytes/expr",
        space.memo().num_physical(),
        space.total(),
        space.total().limbs().len(),
        space.size_bytes() as f64 / space.memo().num_physical() as f64,
    );

    // --- Acceptance assertion 5: artifact load >= 20x cold prepare. -----
    // A serve-fleet restart used to pay the cold path — synthesize the
    // memo and rebuild the plan space — for every resident query. With
    // persistent artifacts it pays one disk read + checksum + decode.
    // This measures both on clique-10 and pins the artifact's whole
    // reason to exist: load must be at least 20x faster than cold
    // preparation, and the loaded space must answer identically.
    let prepared = {
        let s = PlanSpace::build_shared(Arc::clone(&memo), Arc::clone(&query)).unwrap();
        let best = s.unrank(&Nat::zero()).unwrap();
        let cost = best.total_cost(s.memo());
        plansample::PreparedQuery::from_parts(
            s,
            best,
            cost,
            plansample_optimizer::OptimizerConfig::default(),
        )
        .unwrap()
    };
    let artifact_path = std::env::temp_dir().join(format!(
        "plansample-bench-clique10-{}.plan",
        std::process::id()
    ));
    let artifact_bytes =
        plansample_artifact::save(&prepared, &artifact_path).expect("artifact saves");
    let cold_secs = median_secs(
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let (_, query, memo) = spec.build_memo();
                let s = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).unwrap();
                std::hint::black_box(s.total().clone());
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let load_secs = median_secs(
        (0..7)
            .map(|_| {
                let t = Instant::now();
                let p = plansample_artifact::load(&artifact_path).expect("artifact loads");
                std::hint::black_box(p.total().clone());
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let loaded = plansample_artifact::load(&artifact_path).expect("artifact loads");
    let _ = std::fs::remove_file(&artifact_path);
    assert_eq!(
        loaded.total(),
        space.total(),
        "loaded artifact counts identically"
    );
    assert_eq!(
        loaded.best().1.to_bits(),
        prepared.best().1.to_bits(),
        "loaded best cost diverged"
    );
    assert_eq!(
        format!("{:?}", loaded.unrank(&Nat::zero()).unwrap()),
        format!("{:?}", prepared.unrank(&Nat::zero()).unwrap()),
        "loaded unrank(0) diverged"
    );
    let load_speedup = cold_secs / load_secs.max(1e-12);
    println!(
        "build_scaling/clique-10: cold prepare {:.0} ms vs artifact load {:.1} ms \
         ({load_speedup:.0}x, {artifact_bytes} bytes on disk)",
        cold_secs * 1e3,
        load_secs * 1e3,
    );
    assert!(
        load_speedup >= 20.0,
        "loading a clique-10 artifact must be >= 20x faster than cold preparation; \
         measured {load_speedup:.1}x ({cold_secs:.3}s cold, {load_secs:.4}s load)"
    );

    // --- Acceptance assertion 4: parallel build speedup on clique-10. ---
    // 1-thread vs 4-thread wall time over the same memo (median of 3;
    // totals re-checked bit-identical). `with_threads` pins the counts
    // explicitly, overriding PLANSAMPLE_THREADS — so when CI runs this
    // bench twice (env=1 and env=4), the expensive speedup measurement
    // runs only in the env=4 job instead of duplicating in both. The
    // >= 2x bar additionally applies only where the hardware can express
    // it — on < 4 cores the measurement is printed but the assertion is
    // skipped with a notice instead of failing vacuously.
    if std::env::var("PLANSAMPLE_THREADS").as_deref() == Ok("1") {
        println!(
            "build_scaling/clique-10: PLANSAMPLE_THREADS=1 — sequential-pool job; \
             the parallel-speedup measurement runs in the multi-thread job"
        );
        return;
    }
    let timed_build = |threads: usize| {
        let secs = median_secs(
            (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let s = threadpool::with_threads(threads, || {
                        PlanSpace::build_shared(Arc::clone(&memo), Arc::clone(&query)).unwrap()
                    });
                    assert_eq!(
                        s.total(),
                        space.total(),
                        "{threads}-thread build must count identically"
                    );
                    t.elapsed().as_secs_f64()
                })
                .collect(),
        );
        println!(
            "build_scaling/clique-10 threads={threads}: {:.0} ms",
            secs * 1e3
        );
        secs
    };
    let one = timed_build(1);
    let four = timed_build(4);
    let parallel_speedup = one / four.max(1e-12);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "build_scaling/clique-10: parallel speedup {parallel_speedup:.2}x at 4 threads \
         ({cores} core(s) available)"
    );
    if cores >= 4 {
        assert!(
            parallel_speedup >= 2.0,
            "parallel build must be >= 2x faster at 4 threads on clique-10; \
             measured {parallel_speedup:.2}x on {cores} cores"
        );
    } else {
        println!(
            "build_scaling/clique-10: SKIPPING the >= 2x assertion — only {cores} core(s); \
             a parallel speedup is not physically observable here"
        );
    }
}

criterion_group!(benches, bench_build_scaling);
criterion_main!(benches);
