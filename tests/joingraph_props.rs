//! Property tests over the synthetic join-graph generator: for random
//! topologies, sizes, and statistics seeds, the optimizer must produce a
//! space where `rank ∘ unrank` is the identity on sampled ranks, and —
//! on spaces small enough to enumerate — the exact count `N` must equal
//! the brute-force enumeration via the independent recursive oracle.

mod common;

use common::SynthSpace;
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_memo::validate_plan;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cap for brute-force enumeration: spaces at or below this size are
/// exhaustively cross-checked against the recursive oracle.
const ENUM_CAP: u64 = 30_000;

fn arb_spec() -> impl Strategy<Value = JoinGraphSpec> {
    (0usize..4, 3usize..=5, 0u64..1_000_000).prop_map(|(t, n, seed)| {
        let topology = Topology::ALL[t];
        // Clique spaces explode fastest; cap their size so debug-mode
        // optimization stays quick.
        let n = if topology == Topology::Clique {
            n.min(4)
        } else {
            n
        };
        JoinGraphSpec::new(topology, n, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rank_unrank_is_the_identity_on_random_spaces(spec in arb_spec()) {
        let synth = SynthSpace::build(spec);
        let space = synth.space();
        prop_assert!(!space.total().is_zero(), "{}: empty space", synth.label);

        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xABCD);
        for _ in 0..8 {
            let r = Nat::random_below(&mut rng, space.total());
            let plan = space.unrank(&r).expect("rank below total");
            prop_assert!(
                validate_plan(synth.memo(), &synth.query, &plan).is_empty(),
                "{}: unranked plan invalid", synth.label
            );
            let back = space.rank(&plan).expect("member plan ranks");
            prop_assert_eq!(&back, &r, "{}: rank(unrank(r)) != r", &synth.label);
        }
    }

    #[test]
    fn total_matches_brute_force_enumeration_on_small_spaces(spec in arb_spec()) {
        let synth = SynthSpace::build(spec);
        let space = synth.space();
        let total = space.total().clone();
        if let Some(n) = total.to_u64().filter(|&n| n <= ENUM_CAP) {
            // Walk one past the count: every rank in [0, N) must unrank
            // (no gaps) and rank N must not (no excess), and the plans
            // must be pairwise distinct — together with rank∘unrank = id
            // above this pins the bijection onto exactly N plans.
            let all: Vec<_> = space.enumerate().take(n as usize + 1).collect();
            prop_assert_eq!(
                all.len() as u64, n,
                "{}: enumeration disagrees with count", &synth.label
            );
            let distinct: std::collections::HashSet<String> =
                all.iter().map(|p| format!("{:?}", p.preorder_ids())).collect();
            prop_assert_eq!(distinct.len() as u64, n, "{}: duplicate plans", &synth.label);
        } else {
            // Too large to enumerate: spot-check that the first and last
            // ranks unrank (the bijection's boundary cases).
            let mut last = total.clone();
            last.decr();
            prop_assert!(space.unrank(&Nat::zero()).is_ok());
            prop_assert!(space.unrank(&last).is_ok());
            prop_assert!(space.unrank(&total).is_err());
        }
    }
}
