//! Workspace-internal data-parallelism shim: scoped spawn plus
//! parallel-for/parallel-map over index ranges.
//!
//! The build environment for this repository has no crates.io access, so
//! — following the `rand`/`proptest`/`criterion` pattern — this crate
//! vendors the tiny slice of `rayon`-style functionality the plan-space
//! construction actually uses: fork-join over a contiguous index range,
//! with worker threads borrowed from [`std::thread::scope`] (no
//! persistent pool, no work stealing). Swapping to real `rayon` would be
//! a localized change in `plansample-core`'s three call sites.
//!
//! # Thread-count resolution
//!
//! [`num_threads`] resolves, in order:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    determinism tests to compare 1-thread and N-thread builds without
//!    races between concurrently running tests);
//! 2. the process-wide override set by [`set_num_threads`] (the CLI's
//!    `--threads N` flag lands here);
//! 3. the `PLANSAMPLE_THREADS` environment variable (read once, at first
//!    use);
//! 4. [`std::thread::available_parallelism`].
//!
//! # Granularity
//!
//! Workers are spawned per call, so each fork costs a few tens of
//! microseconds per thread. Callers pass `min_chunk`, the smallest
//! amount of work worth a thread; ranges smaller than two chunks run
//! inline on the caller. All entry points are sequential-consistent by
//! construction: every index is processed exactly once and results are
//! returned in index order, so parallel and single-threaded runs are
//! bit-identical for deterministic bodies.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide override; 0 = unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `PLANSAMPLE_THREADS`, parsed once.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// Thread-local override; 0 = unset.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("PLANSAMPLE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of worker threads parallel sections will use, resolved as
/// described in the module docs. Always at least 1.
pub fn num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the process-wide thread count (the CLI's `--threads N`).
/// `0` clears the override.
pub fn set_num_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's parallel sections pinned to `n`
/// threads, restoring the previous setting afterwards (panic-safe).
///
/// Because the override is thread-local, concurrent tests comparing
/// different thread counts cannot race each other.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    assert!(n > 0, "with_threads needs at least one thread");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(LOCAL_THREADS.with(|c| {
        let prev = c.get();
        c.set(n);
        prev
    }));
    f()
}

/// Scoped spawn, re-exported so callers needing raw fork-join (rather
/// than an index range) depend on this crate instead of spelling
/// [`std::thread::scope`] — the single place to swap in a real pool.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// How many workers a range of `len` items deserves, given the smallest
/// chunk worth a thread.
fn workers_for(len: usize, min_chunk: usize) -> usize {
    let by_work = len / min_chunk.max(1);
    num_threads().min(by_work).max(1)
}

/// Runs `body` over `0..len` split into one contiguous sub-range per
/// worker. `body` may run concurrently on multiple threads; the caller's
/// thread processes the first sub-range itself. Ranges shorter than two
/// `min_chunk`s (or a 1-thread configuration) run entirely inline.
///
/// Panics in `body` propagate to the caller after all workers finish.
pub fn parallel_for<F>(len: usize, min_chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let workers = workers_for(len, min_chunk);
    if workers == 1 {
        if len > 0 {
            body(0..len);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    let body = &body;
    scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                let range = (w * chunk).min(len)..((w + 1) * chunk).min(len);
                s.spawn(move || body(range))
            })
            .collect();
        body(0..chunk.min(len));
        for h in handles {
            // Propagate worker panics (join returns Err on panic).
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Maps `f` over `0..len` in parallel, returning results in index order
/// — the deterministic fork-join primitive the plan-space construction
/// and batched sampling are built on. Chunking and inlining behave like
/// [`parallel_for`].
pub fn parallel_map<R, F>(len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers_for(len, min_chunk);
    if workers == 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
    scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                let range = (w * chunk).min(len)..((w + 1) * chunk).min(len);
                s.spawn(move || range.map(f).collect::<Vec<R>>())
            })
            .collect();
        parts.push((0..chunk.min(len)).map(f).collect());
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(1, num_threads)
        });
        assert_eq!(outer, 1);
        // Restored: the override no longer applies.
        assert_ne!(LOCAL_THREADS.with(Cell::get), 3);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = LOCAL_THREADS.with(Cell::get);
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(LOCAL_THREADS.with(Cell::get), before);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        for threads in [1, 2, 4, 7] {
            let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
            with_threads(threads, || {
                parallel_for(1000, 1, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_map_matches_sequential_in_order() {
        let expect: Vec<u64> = (0..257).map(|i| (i as u64) * 3 + 1).collect();
        for threads in [1, 2, 4, 9] {
            let got = with_threads(threads, || parallel_map(257, 1, |i| (i as u64) * 3 + 1));
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn small_ranges_run_inline() {
        // min_chunk larger than the range: must not spawn (observable via
        // thread identity).
        let caller = std::thread::current().id();
        with_threads(8, || {
            parallel_for(10, 100, |range| {
                assert_eq!(std::thread::current().id(), caller);
                assert_eq!(range, 0..10);
            });
        });
    }

    #[test]
    fn empty_range_is_a_no_op() {
        parallel_for(0, 1, |_| panic!("must not run"));
        assert!(parallel_map(0, 1, |i| i).is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(1000, 1, |range| {
                    if range.contains(&999) {
                        panic!("worker failure");
                    }
                });
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn set_num_threads_global_override() {
        // Runs in its own serial block: thread-local overrides take
        // precedence, so shield against parallel tests via with_threads
        // being absent here — the global is still observable because no
        // other test sets it.
        set_num_threads(2);
        assert_eq!(num_threads(), 2);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }
}
