//! Statistical validation of the uniform sampler on a *real* optimizer
//! memo (not the hand-built fixture): chi-square accepts uniformity for
//! the unranking sampler and rejects the naive-walk baseline — the
//! quantitative core of the paper's "unbiased testing" claim — both on
//! the whole space and inside `sample_rooted` sub-spaces.
//!
//! The synthetic-topology counterparts live in
//! `tests/synthetic_uniformity.rs` (fast) and `tests/statistical.rs`
//! (large spaces, gated behind `PLANSAMPLE_STATISTICAL=1`).

mod common;

use plansample::PlanSpace;
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::{QueryBuilder, QuerySpec};
use plansample_stats::chi_square_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn two_way_query(catalog: &plansample_catalog::Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    qb.build().unwrap()
}

fn two_way_space_freqs(draws: usize, naive: bool) -> Vec<usize> {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = two_way_query(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let n = space.total().to_u64().unwrap() as usize;

    let mut rng = StdRng::seed_from_u64(1234);
    let mut freq = vec![0usize; n];
    for _ in 0..draws {
        let plan = if naive {
            space.sample_naive_walk(&mut rng).unwrap()
        } else {
            space.sample(&mut rng)
        };
        let rank = space.rank(&plan).unwrap().to_u64().unwrap() as usize;
        freq[rank] += 1;
    }
    freq
}

#[test]
fn unranking_sampler_is_uniform_on_optimizer_memo() {
    let freq = two_way_space_freqs(56_000, false);
    assert!(freq.iter().all(|&f| f > 0), "every plan must be reachable");
    let test = chi_square_uniform(&freq).unwrap();
    assert!(!test.rejects_at(0.001), "uniformity rejected: {test}");
}

#[test]
fn naive_walk_is_biased_on_optimizer_memo() {
    let freq = two_way_space_freqs(56_000, true);
    let test = chi_square_uniform(&freq).unwrap();
    assert!(
        test.rejects_at(1e-6),
        "naive walk unexpectedly uniform: {test}"
    );
    // Not merely detectable: the walk's bias is a large effect
    // (Cohen's w ≥ 0.5) even on this 2-relation space.
    assert!(
        test.effect_size() > 0.5,
        "naive-walk bias w = {} is not a large effect",
        test.effect_size()
    );
}

#[test]
fn sample_frequencies_match_subspace_proportions() {
    // Beyond global uniformity: the fraction of samples whose root is
    // operator v must match N(v)/N — the structural property that makes
    // stratified analysis of the space sound.
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q7(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let root = optimized.memo.root();

    let draws = 20_000usize;
    let mut rng = StdRng::seed_from_u64(77);
    let mut by_root: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for _ in 0..draws {
        let plan = space.sample(&mut rng);
        *by_root.entry(plan.id.index).or_default() += 1;
    }

    let total = space.total().to_f64();
    for (id, _) in optimized.memo.group(root).phys_iter() {
        let expected = space.count_rooted(id).to_f64() / total;
        let observed = *by_root.get(&id.index).unwrap_or(&0) as f64 / draws as f64;
        // 4-sigma binomial tolerance.
        let sigma = (expected * (1.0 - expected) / draws as f64).sqrt();
        assert!(
            (observed - expected).abs() <= 4.0 * sigma + 1e-9,
            "root {id}: observed {observed:.4} expected {expected:.4}"
        );
    }
}

/// Satellite coverage: sub-space sampling on a real TPC-H memo is
/// chi-square-uniform for physical roots in the memo's root group *and*
/// for an interior (non-root) join group — whole-space uniformity alone
/// does not imply this, since `sample_rooted` runs its own
/// `random_below(count_rooted)` draw.
#[test]
fn rooted_subspaces_are_uniform_on_optimizer_memo() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    // 3-way join so interior join groups exist.
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.rel("supplier", Some("s")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
    let query = qb.build().unwrap();
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();

    // Two roots from the root group plus one from an interior
    // 2-relation join group.
    let roots =
        common::pick_subspace_roots(&optimized.memo, &space, query.relations.len(), 6..=20_000);
    assert!(
        roots.len() >= 3,
        "expected 2 root-group + 1 interior sub-space roots, got {}",
        roots.len()
    );

    let mut rng = StdRng::seed_from_u64(4321);
    for v in roots {
        let count = space.count_rooted(v).to_u64().unwrap() as usize;
        let freq = common::rooted_spectrum(&space, v, 8 * count, &mut rng);
        let test = chi_square_uniform(&freq).unwrap();
        assert!(
            !test.rejects_at(0.001),
            "sub-space at {v} ({count} plans) not uniform: {test}"
        );
    }
}
