//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! [len: u32 LE]  [payload: len bytes]
//! payload = [version: u8] [opcode: u8] [request_id: u64 LE] [body]
//! ```
//!
//! `len` counts the payload only and is bounded by [`MAX_FRAME_LEN`]; a
//! larger prefix is a protocol violation ([`WireError::Oversized`]) and
//! the connection is closed, because the stream can no longer be
//! re-synchronized cheaply. Every *other* malformed frame is
//! recoverable: the length prefix delimits it, so the server skips
//! exactly the bad frame, answers with a typed [`Response::Error`], and
//! keeps serving the connection (see `docs/DESIGN.md` §9).
//!
//! The decoder is hardened against hostile bytes: it never panics, never
//! allocates more than the frame it was handed, and rejects trailing
//! garbage after a complete body ([`WireError::Trailing`]) so a frame
//! has exactly one valid encoding. Encoding is deterministic — the same
//! value always produces the same bytes — which is what makes the
//! serving layer's determinism contract testable end to end: same
//! request bytes in, same response bytes out (sampling takes its RNG
//! seed *from the request*).

use plansample_bignum::Nat;
use plansample_datagen::joingraph::Topology;

/// Protocol version carried in every frame header. Version 3 added
/// [`StatsReply::batch_peak_bytes`]; version 2 widened [`StatsReply`]
/// with admission/accept counters and the per-reactor breakdown. Older
/// peers are rejected with a typed [`WireError::BadVersion`] reply
/// rather than misdecoded.
pub const PROTOCOL_VERSION: u8 = 3;

/// Upper bound on a frame's payload length. Large enough for any
/// response the server produces (plans are small trees; sample batches
/// are capped by [`MAX_SAMPLE_BATCH`]), small enough that a hostile
/// length prefix cannot make the server buffer unboundedly.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Upper bound on `k` in a [`Request::SampleBatch`]; keeps the response
/// under [`MAX_FRAME_LEN`] and bounds per-request work.
pub const MAX_SAMPLE_BATCH: u32 = 4096;

/// Upper bound on relations in a synthetic workload: bounds the
/// optimizer work a single `prepare` can demand.
pub const MAX_SYNTH_RELATIONS: u16 = 10;

/// Cap on the diagnostic `message` carried by [`Response::Error`].
/// Error messages can embed client-controlled text — the SQL parser's
/// diagnostic quotes the offending line — so without a cap a large
/// request that is legal under [`MAX_FRAME_LEN`] could provoke a reply
/// frame that violates it, and the client would then fail the
/// connection on the server's own reply. Server-side error replies are
/// built through [`Response::error`], which enforces this bound.
pub const MAX_ERROR_MESSAGE_LEN: usize = 4096;

/// Request id used by connection-level error replies, where the
/// offending frame's id could not be read (bad version, oversized
/// prefix). Ordinary requests may use any id; responses echo it.
pub const CONNECTION_REQUEST_ID: u64 = 0;

/// Errors raised while decoding frames or payloads. `Oversized` and
/// `BadVersion` poison the stream (the connection closes after a typed
/// reply); everything else is scoped to one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The header's version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The header's opcode byte names no known message.
    UnknownOpcode(u8),
    /// An enum tag (workload kind, topology, error code) is out of range.
    BadTag(&'static str, u64),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A count field exceeds its protocol bound.
    BadCount(&'static str, u64),
    /// Bytes remain after a complete body.
    Trailing(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::Oversized(len) => {
                write!(
                    f,
                    "length prefix {len} exceeds the {MAX_FRAME_LEN}-byte frame bound"
                )
            }
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this peer speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::BadTag(what, v) => write!(f, "invalid {what} tag {v}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadCount(what, v) => {
                write!(f, "{what} count {v} exceeds the protocol bound")
            }
            WireError::Trailing(n) => write!(f, "{n} trailing byte(s) after a complete body"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Whether the stream can continue after this error (the frame
    /// boundary is still trustworthy).
    pub fn is_recoverable(&self) -> bool {
        !matches!(self, WireError::Oversized(_) | WireError::BadVersion(_))
    }
}

/// What a request operates on: a SQL query against the server's TPC-H
/// catalog, or a synthetic join-graph spec the server materializes
/// deterministically (same spec, same space, on every server).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Workload {
    /// SQL text, parsed against the TPC-H catalog.
    Sql(String),
    /// A seeded synthetic join graph (see `plansample-datagen`).
    Synthetic {
        /// Join-graph shape.
        topology: Topology,
        /// Number of relations (2..=[`MAX_SYNTH_RELATIONS`]).
        relations: u16,
        /// Statistics seed.
        seed: u64,
    },
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Optimize + count the workload (idempotent; warms the cache).
    Prepare(Workload),
    /// The exact number of complete execution plans.
    Count(Workload),
    /// The optimizer's chosen plan and its cost.
    Best(Workload),
    /// Build plan number `rank` (0-based).
    Unrank(Workload, Nat),
    /// Draw `k` plans uniformly, from a client-supplied RNG seed.
    SampleBatch(Workload, u64, u32),
    /// Server + cache counters.
    Stats,
}

/// A plan serialized as its preorder expression-id listing
/// (`(group, index)` pairs — the same ids `plansample-cli memo` and
/// `enumerate` print).
pub type WirePlan = Vec<(u32, u32)>;

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame decoded, but the request is semantically invalid
    /// (malformed body, out-of-range rank, too-large batch, …).
    BadRequest,
    /// SQL parsing failed; the message holds the diagnostic.
    Sql,
    /// Optimization failed (e.g. disconnected join graph).
    Optimize,
    /// A plan-space operation failed (rank outside the space, …).
    Space,
    /// The server shed this request under load. Retry later; the reply
    /// is immediate and the request was *not* queued.
    Overloaded,
    /// The request frame carried an unknown opcode.
    UnknownOpcode,
    /// The request frame carried an unsupported protocol version.
    BadVersion,
    /// The request frame's length prefix exceeded the bound.
    Oversized,
}

impl ErrorCode {
    /// Every code, in wire order (tests iterate this).
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::BadRequest,
        ErrorCode::Sql,
        ErrorCode::Optimize,
        ErrorCode::Space,
        ErrorCode::Overloaded,
        ErrorCode::UnknownOpcode,
        ErrorCode::BadVersion,
        ErrorCode::Oversized,
    ];

    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::Sql => 1,
            ErrorCode::Optimize => 2,
            ErrorCode::Space => 3,
            ErrorCode::Overloaded => 4,
            ErrorCode::UnknownOpcode => 5,
            ErrorCode::BadVersion => 6,
            ErrorCode::Oversized => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => ErrorCode::BadRequest,
            1 => ErrorCode::Sql,
            2 => ErrorCode::Optimize,
            3 => ErrorCode::Space,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::UnknownOpcode,
            6 => ErrorCode::BadVersion,
            7 => ErrorCode::Oversized,
            other => return Err(WireError::BadTag("error code", other as u64)),
        })
    }
}

/// One reactor's share of the serving counters, carried inside
/// [`StatsReply::per_reactor`]. Connections are pinned to a reactor for
/// life, so summing these across reactors reproduces the global
/// `requests` and `connections_total` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Requests this reactor decoded (admitted or queue-shed).
    pub requests: u64,
    /// Connections handed to this reactor over the server's lifetime.
    pub connections: u64,
}

/// Counter snapshot carried by [`Response::Stats`]: the server's own
/// counters plus its TPC-H [`plansample_core::ServiceStats`], the
/// synthetic-service aggregate, and the per-reactor breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Requests decoded by the reactors — the sum of
    /// [`StatsReply::requests_admitted`] and [`StatsReply::shed_queue`]
    /// once the server is quiescent.
    pub requests: u64,
    /// Requests that passed the queue bound and reached the execution
    /// layer.
    pub requests_admitted: u64,
    /// Requests answered `Overloaded` because the queue was full.
    pub shed_queue: u64,
    /// Requests answered `Overloaded` because preparing was inadmissible.
    pub shed_prepare: u64,
    /// Frames that failed to decode (recoverable or fatal).
    pub wire_errors: u64,
    /// `accept(2)` failures other than `WouldBlock`/`EINTR` (fd
    /// exhaustion and kin); the acceptor backs off instead of spinning.
    pub accept_errors: u64,
    /// Currently open connections.
    pub connections_open: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// TPC-H service: cache hits.
    pub hits: u64,
    /// TPC-H service: cache misses (preparations performed).
    pub misses: u64,
    /// TPC-H service: requests coalesced onto another preparation.
    pub coalesced: u64,
    /// TPC-H service: artifacts evicted.
    pub evictions: u64,
    /// TPC-H service: artifacts resident.
    pub entries: u64,
    /// TPC-H service: bytes resident.
    pub resident_bytes: u64,
    /// TPC-H service: byte budget (0 when unbounded).
    pub byte_budget: u64,
    /// TPC-H service: first preparations in flight.
    pub inflight_prepares: u64,
    /// Synthetic services currently resident (bounded by the LRU cap).
    pub synth_services: u64,
    /// Bytes resident across the synthetic services.
    pub synth_resident_bytes: u64,
    /// Synthetic services evicted to stay under the LRU cap.
    pub synth_evictions: u64,
    /// High-water mark of per-request sampling memory: the flat plan
    /// batch plus the reply buffer of the largest `SampleBatch` served
    /// so far. Stream encoding keeps this bounded by the reply size
    /// instead of growing with a tree per sampled plan (see
    /// `tests/serving_stats.rs`).
    pub batch_peak_bytes: u64,
    /// Per-reactor counter breakdown, indexed by reactor.
    pub per_reactor: Vec<ReactorStats>,
}

/// A server→client message. Every response echoes the request id of the
/// frame it answers ([`CONNECTION_REQUEST_ID`] for connection-level
/// errors).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Prepare`].
    Prepared {
        /// `N`: the exact plan count.
        total: Nat,
        /// Memo groups in the artifact.
        groups: u32,
        /// Physical expressions in the artifact.
        exprs: u32,
        /// Resident bytes the artifact charges.
        size_bytes: u64,
        /// Whether the artifact was already cached.
        cached: bool,
    },
    /// Answer to [`Request::Count`].
    Count(Nat),
    /// Answer to [`Request::Best`]: the optimizer's plan and its cost.
    Best(WirePlan, f64),
    /// Answer to [`Request::Unrank`]: the plan and its scaled cost.
    Plan(WirePlan, f64),
    /// Answer to [`Request::SampleBatch`]: each drawn plan with its
    /// scaled cost, in draw order.
    Samples(Vec<(WirePlan, f64)>),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Any request that could not be served.
    Error {
        /// What failed.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Wraps a payload in its length prefix.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits one frame off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// frame, `Ok(Some((payload, consumed)))` when it does, and
/// `Err(WireError::Oversized)` when the prefix violates the bound (the
/// stream cannot be re-synchronized; close it).
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((&buf[4..total], total)))
}

// ---------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed count, validated against both the remaining
    /// bytes (each element needs >= `elem_bytes`) so a hostile count can
    /// never cause an oversized allocation.
    fn count(&mut self, what: &'static str, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::BadCount(what, n as u64));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.count("string byte", 1)?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn nat(&mut self) -> Result<Nat, WireError> {
        let n = self.count("limb", 8)?;
        let mut limbs = Vec::with_capacity(n);
        for _ in 0..n {
            limbs.push(self.u64()?);
        }
        Ok(Nat::from_limbs(limbs))
    }

    fn plan(&mut self) -> Result<WirePlan, WireError> {
        let n = self.count("plan node", 8)?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let group = self.u32()?;
            let index = self.u32()?;
            nodes.push((group, index));
        }
        Ok(nodes)
    }

    fn workload(&mut self) -> Result<Workload, WireError> {
        match self.u8()? {
            0 => Ok(Workload::Sql(self.string()?)),
            1 => {
                let topology = match self.u8()? {
                    0 => Topology::Chain,
                    1 => Topology::Star,
                    2 => Topology::Cycle,
                    3 => Topology::Clique,
                    t => return Err(WireError::BadTag("topology", t as u64)),
                };
                let relations = self.u16()?;
                let seed = self.u64()?;
                Ok(Workload::Synthetic {
                    topology,
                    relations,
                    seed,
                })
            }
            t => Err(WireError::BadTag("workload", t as u64)),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

#[derive(Default)]
struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn nat(&mut self, n: &Nat) {
        let limbs = n.limbs();
        self.u32(limbs.len() as u32);
        for &l in limbs {
            self.u64(l);
        }
    }
    fn plan(&mut self, plan: &WirePlan) {
        self.u32(plan.len() as u32);
        for &(g, i) in plan {
            self.u32(g);
            self.u32(i);
        }
    }
    fn workload(&mut self, w: &Workload) {
        match w {
            Workload::Sql(sql) => {
                self.u8(0);
                self.string(sql);
            }
            Workload::Synthetic {
                topology,
                relations,
                seed,
            } => {
                self.u8(1);
                self.u8(match topology {
                    Topology::Chain => 0,
                    Topology::Star => 1,
                    Topology::Cycle => 2,
                    Topology::Clique => 3,
                });
                self.u16(*relations);
                self.u64(*seed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Payload encode/decode
// ---------------------------------------------------------------------

fn header(opcode: u8, request_id: u64) -> Writer {
    let mut w = Writer::default();
    w.u8(PROTOCOL_VERSION);
    w.u8(opcode);
    w.u64(request_id);
    w
}

/// Reads a payload header, returning `(opcode, request_id)`.
///
/// Callers that can recover from an unknown opcode (the server) should
/// use this before the full decode: the request id is readable even
/// when the body is not.
pub fn decode_header(payload: &[u8]) -> Result<(u8, u64), WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let opcode = r.u8()?;
    let request_id = r.u64()?;
    Ok((opcode, request_id))
}

impl Request {
    /// Encodes the request (header + body) as a frame payload.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut w = match self {
            Request::Prepare(wl) => {
                let mut w = header(0x01, request_id);
                w.workload(wl);
                w
            }
            Request::Count(wl) => {
                let mut w = header(0x02, request_id);
                w.workload(wl);
                w
            }
            Request::Best(wl) => {
                let mut w = header(0x03, request_id);
                w.workload(wl);
                w
            }
            Request::Unrank(wl, rank) => {
                let mut w = header(0x04, request_id);
                w.workload(wl);
                w.nat(rank);
                w
            }
            Request::SampleBatch(wl, seed, k) => {
                let mut w = header(0x05, request_id);
                w.workload(wl);
                w.u64(*seed);
                w.u32(*k);
                w
            }
            Request::Stats => header(0x06, request_id),
        };
        std::mem::take(&mut w.0)
    }

    /// Decodes a frame payload into `(request_id, request)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Self), WireError> {
        let (opcode, request_id) = decode_header(payload)?;
        let mut r = Reader::new(payload);
        r.pos = 10; // past the header just validated
        let request = match opcode {
            0x01 => Request::Prepare(r.workload()?),
            0x02 => Request::Count(r.workload()?),
            0x03 => Request::Best(r.workload()?),
            0x04 => {
                let wl = r.workload()?;
                let rank = r.nat()?;
                Request::Unrank(wl, rank)
            }
            0x05 => {
                let wl = r.workload()?;
                let seed = r.u64()?;
                let k = r.u32()?;
                Request::SampleBatch(wl, seed, k)
            }
            0x06 => Request::Stats,
            op => return Err(WireError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok((request_id, request))
    }
}

impl Response {
    /// Builds an error reply, clamping the message to
    /// [`MAX_ERROR_MESSAGE_LEN`] (on a char boundary, marking the cut)
    /// so the encoded reply always fits [`MAX_FRAME_LEN`] no matter how
    /// much request text the diagnostic quotes.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        const MARKER: &str = "… [truncated]";
        let mut message: String = message.into();
        if message.len() > MAX_ERROR_MESSAGE_LEN {
            let mut end = MAX_ERROR_MESSAGE_LEN - MARKER.len();
            while !message.is_char_boundary(end) {
                end -= 1;
            }
            message.truncate(end);
            message.push_str(MARKER);
        }
        Response::Error { code, message }
    }

    /// Encodes the response (header + body) as a frame payload.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut w = match self {
            Response::Prepared {
                total,
                groups,
                exprs,
                size_bytes,
                cached,
            } => {
                let mut w = header(0x81, request_id);
                w.nat(total);
                w.u32(*groups);
                w.u32(*exprs);
                w.u64(*size_bytes);
                w.u8(*cached as u8);
                w
            }
            Response::Count(n) => {
                let mut w = header(0x82, request_id);
                w.nat(n);
                w
            }
            Response::Best(plan, cost) => {
                let mut w = header(0x83, request_id);
                w.plan(plan);
                w.f64(*cost);
                w
            }
            Response::Plan(plan, cost) => {
                let mut w = header(0x84, request_id);
                w.plan(plan);
                w.f64(*cost);
                w
            }
            Response::Samples(items) => {
                let mut w = header(0x85, request_id);
                w.u32(items.len() as u32);
                for (plan, cost) in items {
                    w.plan(plan);
                    w.f64(*cost);
                }
                w
            }
            Response::Stats(s) => {
                let mut w = header(0x86, request_id);
                for v in [
                    s.requests,
                    s.requests_admitted,
                    s.shed_queue,
                    s.shed_prepare,
                    s.wire_errors,
                    s.accept_errors,
                    s.connections_open,
                    s.connections_total,
                    s.hits,
                    s.misses,
                    s.coalesced,
                    s.evictions,
                    s.entries,
                    s.resident_bytes,
                    s.byte_budget,
                    s.inflight_prepares,
                    s.synth_services,
                    s.synth_resident_bytes,
                    s.synth_evictions,
                    s.batch_peak_bytes,
                ] {
                    w.u64(v);
                }
                w.u32(s.per_reactor.len() as u32);
                for r in &s.per_reactor {
                    w.u64(r.requests);
                    w.u64(r.connections);
                }
                w
            }
            Response::Error { code, message } => {
                let mut w = header(0xFF, request_id);
                w.u8(code.to_u8());
                w.string(message);
                w
            }
        };
        std::mem::take(&mut w.0)
    }

    /// Decodes a frame payload into `(request_id, response)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Self), WireError> {
        let (opcode, request_id) = decode_header(payload)?;
        let mut r = Reader::new(payload);
        r.pos = 10;
        let response = match opcode {
            0x81 => {
                let total = r.nat()?;
                let groups = r.u32()?;
                let exprs = r.u32()?;
                let size_bytes = r.u64()?;
                let cached = match r.u8()? {
                    0 => false,
                    1 => true,
                    v => return Err(WireError::BadTag("cached flag", v as u64)),
                };
                Response::Prepared {
                    total,
                    groups,
                    exprs,
                    size_bytes,
                    cached,
                }
            }
            0x82 => Response::Count(r.nat()?),
            0x83 => {
                let plan = r.plan()?;
                let cost = r.f64()?;
                Response::Best(plan, cost)
            }
            0x84 => {
                let plan = r.plan()?;
                let cost = r.f64()?;
                Response::Plan(plan, cost)
            }
            0x85 => {
                let n = r.count("sample", 12)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let plan = r.plan()?;
                    let cost = r.f64()?;
                    items.push((plan, cost));
                }
                Response::Samples(items)
            }
            0x86 => {
                let mut s = {
                    let mut next = || r.u64();
                    StatsReply {
                        requests: next()?,
                        requests_admitted: next()?,
                        shed_queue: next()?,
                        shed_prepare: next()?,
                        wire_errors: next()?,
                        accept_errors: next()?,
                        connections_open: next()?,
                        connections_total: next()?,
                        hits: next()?,
                        misses: next()?,
                        coalesced: next()?,
                        evictions: next()?,
                        entries: next()?,
                        resident_bytes: next()?,
                        byte_budget: next()?,
                        inflight_prepares: next()?,
                        synth_services: next()?,
                        synth_resident_bytes: next()?,
                        synth_evictions: next()?,
                        batch_peak_bytes: next()?,
                        per_reactor: Vec::new(),
                    }
                };
                let n = r.count("reactor", 16)?;
                s.per_reactor.reserve(n);
                for _ in 0..n {
                    let requests = r.u64()?;
                    let connections = r.u64()?;
                    s.per_reactor.push(ReactorStats {
                        requests,
                        connections,
                    });
                }
                Response::Stats(s)
            }
            0xFF => {
                let code = ErrorCode::from_u8(r.u8()?)?;
                let message = r.string()?;
                Response::Error { code, message }
            }
            op => return Err(WireError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok((request_id, response))
    }
}

/// Incremental encoder for a [`Response::Samples`] payload: plans are
/// appended one at a time, each encoded straight into the reply buffer
/// as it is unranked, so serving a 4096-plan batch never materializes a
/// tree (or a `WirePlan`) per plan. [`finish`](Self::finish) patches
/// the item count and yields bytes **identical** to
/// `Response::Samples(items).encode(request_id)` for the same plans and
/// costs — asserted by `samples_encoder_matches_batch_encoding` below,
/// which is what lets the server switch paths without clients noticing.
pub struct SamplesEncoder {
    w: Writer,
    /// Offset of the u32 item count, patched at finish.
    count_pos: usize,
    count: u32,
}

impl SamplesEncoder {
    /// Starts a samples reply for `request_id`.
    pub fn new(request_id: u64) -> SamplesEncoder {
        let mut w = header(0x85, request_id);
        let count_pos = w.0.len();
        w.u32(0);
        SamplesEncoder {
            w,
            count_pos,
            count: 0,
        }
    }

    /// Appends one plan — its preorder `(group, index)` pairs — and its
    /// scaled cost.
    pub fn push(&mut self, plan: impl ExactSizeIterator<Item = (u32, u32)>, cost: f64) {
        self.w.u32(plan.len() as u32);
        for (g, i) in plan {
            self.w.u32(g);
            self.w.u32(i);
        }
        self.w.f64(cost);
        self.count += 1;
    }

    /// Bytes buffered so far (header + encoded plans) — the reply's
    /// contribution to the peak-memory counter.
    pub fn len_bytes(&self) -> usize {
        self.w.0.len()
    }

    /// Seals the payload: patches the item count and returns the frame
    /// payload.
    pub fn finish(mut self) -> Vec<u8> {
        self.w.0[self.count_pos..self.count_pos + 4].copy_from_slice(&self.count.to_le_bytes());
        std::mem::take(&mut self.w.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_encoder_matches_batch_encoding() {
        let items: Vec<(WirePlan, f64)> = vec![
            (vec![(0, 1), (2, 3), (4, 5)], 1.25),
            (vec![], 0.5),
            (vec![(9, 9)], 3.75),
        ];
        let batch = Response::Samples(items.clone()).encode(77);
        let mut enc = SamplesEncoder::new(77);
        for (plan, cost) in &items {
            enc.push(plan.iter().copied(), *cost);
        }
        assert_eq!(enc.finish(), batch, "stream path must be byte-identical");

        // Empty replies too.
        assert_eq!(
            SamplesEncoder::new(3).finish(),
            Response::Samples(Vec::new()).encode(3)
        );
    }

    #[test]
    fn request_frames_round_trip() {
        let requests = [
            Request::Prepare(Workload::Sql("SELECT * FROM nation".into())),
            Request::Count(Workload::Synthetic {
                topology: Topology::Clique,
                relations: 4,
                seed: 99,
            }),
            Request::Unrank(Workload::Sql("q".into()), Nat::from_limbs(vec![7, 9])),
            Request::SampleBatch(Workload::Sql("q".into()), 1234, 64),
            Request::Stats,
        ];
        for (id, req) in requests.iter().enumerate() {
            let payload = req.encode(id as u64 + 1);
            let framed = frame(&payload);
            let (split, consumed) = split_frame(&framed).unwrap().unwrap();
            assert_eq!(consumed, framed.len());
            let (rid, decoded) = Request::decode(split).unwrap();
            assert_eq!(rid, id as u64 + 1);
            assert_eq!(&decoded, req);
        }
    }

    #[test]
    fn split_frame_handles_partial_input() {
        let payload = Request::Stats.encode(9);
        let framed = frame(&payload);
        for cut in 0..framed.len() {
            assert_eq!(split_frame(&framed[..cut]).unwrap(), None, "cut at {cut}");
        }
        // Extra bytes after the frame are left for the next parse.
        let mut two = framed.clone();
        two.extend_from_slice(&framed);
        let (_, consumed) = split_frame(&two).unwrap().unwrap();
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn oversized_prefix_is_fatal() {
        let bad = (MAX_FRAME_LEN + 1).to_le_bytes();
        let err = split_frame(&bad).unwrap_err();
        assert_eq!(err, WireError::Oversized(MAX_FRAME_LEN + 1));
        assert!(!err.is_recoverable());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Stats.encode(1);
        payload.push(0);
        assert_eq!(Request::decode(&payload), Err(WireError::Trailing(1)));
    }

    #[test]
    fn error_constructor_clamps_oversized_messages() {
        // A diagnostic quoting a ~1MiB request line must still encode
        // to a reply that fits the frame bound.
        let huge = "x".repeat(2 * MAX_FRAME_LEN as usize);
        let reply = Response::error(ErrorCode::Sql, huge);
        let payload = reply.encode(1);
        assert!(payload.len() <= MAX_FRAME_LEN as usize);
        let (_, decoded) = Response::decode(&payload).unwrap();
        match decoded {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Sql);
                assert!(message.len() <= MAX_ERROR_MESSAGE_LEN);
                assert!(message.ends_with("[truncated]"));
            }
            other => panic!("expected Error, got {other:?}"),
        }

        // The cut lands on a char boundary even mid-multibyte-sequence.
        let multibyte = "é".repeat(MAX_ERROR_MESSAGE_LEN);
        match Response::error(ErrorCode::Sql, multibyte) {
            Response::Error { message, .. } => assert!(message.len() <= MAX_ERROR_MESSAGE_LEN),
            other => panic!("expected Error, got {other:?}"),
        }

        // Short messages pass through untouched.
        match Response::error(ErrorCode::BadRequest, "nope") {
            Response::Error { message, .. } => assert_eq!(message, "nope"),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A string claiming u32::MAX bytes inside a 20-byte payload must
        // fail on the count check, not attempt the allocation.
        let mut w = Request::Prepare(Workload::Sql(String::new())).encode(1);
        let len = w.len();
        w[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&w),
            Err(WireError::BadCount("string byte", _))
        ));
    }
}
