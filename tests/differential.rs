//! §4 differential testing across the full pipeline: every TPC-H query,
//! both cross-product modes, exhaustive where feasible and sampled
//! elsewhere. All plans of a query must produce identical results on
//! the micro database.

use plansample::PlanSpace;
use plansample_catalog::Catalog;
use plansample_datagen::MicroScale;
use plansample_exec::Database;
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::{QueryBuilder, QuerySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Catalog, Database) {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 7);
    (catalog, db)
}

fn check_sampled(
    catalog: &Catalog,
    db: &Database,
    query: &QuerySpec,
    cp: bool,
    k: usize,
    seed: u64,
) {
    let config = if cp {
        OptimizerConfig::with_cross_products()
    } else {
        OptimizerConfig::default()
    };
    let optimized = optimize(catalog, query, &config).unwrap();
    let space = PlanSpace::build(&optimized.memo, query).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let report = space.validate_sampled(catalog, db, k, &mut rng).unwrap();
    assert!(report.all_passed(), "{report}");
    assert_eq!(report.plans_checked, k);
}

#[test]
fn all_tpch_queries_sampled_no_cross_products() {
    let (catalog, db) = setup();
    for (name, query) in plansample_query::tpch::all(&catalog) {
        let k = if name == "Q6" { 4 } else { 60 };
        check_sampled(&catalog, &db, &query, false, k, 11);
    }
}

#[test]
fn q5_and_q9_sampled_with_cross_products() {
    // Cross-product plans on micro data are still cheap to execute and
    // must produce the same results (the predicates are applied by the
    // joins above the cross product).
    let (catalog, db) = setup();
    for query in [
        plansample_query::tpch::q5(&catalog),
        plansample_query::tpch::q9(&catalog),
    ] {
        check_sampled(&catalog, &db, &query, true, 40, 13);
    }
}

#[test]
fn exhaustive_on_two_way_join_with_projection() {
    let (catalog, db) = setup();
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    qb.project(&[("n", "n_name"), ("r", "r_name")]).unwrap();
    let query = qb.build().unwrap();

    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let report = space
        .validate_exhaustive(&catalog, &db, usize::MAX)
        .unwrap();
    assert!(report.all_passed(), "{report}");
    assert_eq!(
        Some(report.plans_checked as u64),
        space.total().to_u64(),
        "exhaustive run covers the whole space"
    );
    assert_eq!(report.reference_rows, 25, "every nation joins its region");
}

#[test]
fn exhaustive_on_grouped_aggregate() {
    let (catalog, db) = setup();
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("supplier", Some("s")).unwrap();
    qb.rel("nation", Some("n")).unwrap();
    qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
    qb.aggregate(
        &[("n", "n_name")],
        &[
            (plansample_query::AggFunc::CountStar, None),
            (plansample_query::AggFunc::Sum, Some(("s", "s_acctbal"))),
            (plansample_query::AggFunc::Min, Some(("s", "s_name"))),
        ],
    )
    .unwrap();
    let query = qb.build().unwrap();

    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let report = space
        .validate_exhaustive(&catalog, &db, usize::MAX)
        .unwrap();
    assert!(report.all_passed(), "{report}");
    assert!(report.plans_checked > 50, "stream/hash agg × join space");
}

#[test]
fn exhaustive_on_cyclic_three_way_join() {
    // Triangle query: the cyclic-join code path (multiple crossing
    // predicates at the top join become hash keys / merge residuals).
    let (catalog, db) = setup();
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("supplier", Some("s")).unwrap();
    qb.rel("customer", Some("c")).unwrap();
    qb.rel("nation", Some("n")).unwrap();
    qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
    qb.join(("c", "c_nationkey"), ("n", "n_nationkey")).unwrap();
    qb.join(("s", "s_nationkey"), ("c", "c_nationkey")).unwrap();
    let query = qb.build().unwrap();

    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    // Exhaustive up to a cap (the cyclic space is bigger).
    let report = space.validate_exhaustive(&catalog, &db, 400).unwrap();
    assert!(report.all_passed(), "{report}");
    assert!(report.reference_rows > 0);
}

#[test]
fn transform_explorer_space_is_differentially_clean() {
    let (catalog, db) = setup();
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("customer", Some("c")).unwrap();
    qb.rel("nation", Some("n")).unwrap();
    qb.join(("o", "o_custkey"), ("c", "c_custkey")).unwrap();
    qb.join(("c", "c_nationkey"), ("n", "n_nationkey")).unwrap();
    let query = qb.build().unwrap();
    let config = OptimizerConfig {
        explorer: plansample_optimizer::Explorer::Transform,
        ..Default::default()
    };
    let optimized = optimize(&catalog, &query, &config).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let report = space.validate_exhaustive(&catalog, &db, 500).unwrap();
    assert!(report.all_passed(), "{report}");
}
