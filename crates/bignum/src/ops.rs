//! Comparison, addition, subtraction, and multiplication for [`Nat`].
//!
//! Every operation has a fast path for inline (single-limb) operands —
//! plain `u64`/`u128` machine arithmetic with no allocation unless the
//! result genuinely spills past 64 bits — and a schoolbook slice-based
//! general path for multi-limb values.

use crate::Nat;
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Sub, SubAssign};

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (self.limbs(), other.limbs());
        match a.len().cmp(&b.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        // Same limb count: compare from most significant limb down.
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Slice addition: `long + short` with `long.len() >= short.len()`.
fn add_slices(long: &[u64], short: &[u64]) -> Nat {
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &a) in long.iter().enumerate() {
        let b = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = a.overflowing_add(b);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    Nat::from_limbs(out)
}

impl Nat {
    /// `self + other`.
    pub fn add_nat(&self, other: &Nat) -> Nat {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return Nat::from(a as u128 + b as u128);
        }
        let (a, b) = (self.limbs(), other.limbs());
        if a.len() >= b.len() {
            add_slices(a, b)
        } else {
            add_slices(b, a)
        }
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return a.checked_sub(b).map(Nat::small);
        }
        if self < other {
            return None;
        }
        let (a, b) = (self.limbs(), other.limbs());
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &x) in a.iter().enumerate() {
            let y = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = x.overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Nat::from_limbs(out))
    }

    /// Schoolbook multiplication. Quadratic, which is fine at MEMO scales
    /// (plan counts of a few dozen limbs).
    pub fn mul_nat(&self, other: &Nat) -> Nat {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return Nat::from(a as u128 * b as u128);
        }
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let (a, b) = (self.limbs(), other.limbs());
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Nat::from_limbs(out)
    }

    /// Multiply in place by a single `u64`.
    pub fn mul_u64_assign(&mut self, m: u64) {
        if let Some(v) = self.as_small() {
            *self = Nat::from(v as u128 * m as u128);
            return;
        }
        if m == 0 {
            *self = Nat::zero();
            return;
        }
        let spill = self.spill.as_mut().expect("inline handled above");
        let mut carry = 0u128;
        for limb in spill.iter_mut() {
            let t = (*limb as u128) * (m as u128) + carry;
            *limb = t as u64;
            carry = t >> 64;
        }
        if carry != 0 {
            // Carry past the top limb: grow the spill buffer.
            let mut grown = std::mem::take(spill).into_vec();
            while carry != 0 {
                grown.push(carry as u64);
                carry >>= 64;
            }
            *spill = grown.into_boxed_slice();
        }
    }

    /// Add a single `u64` in place.
    pub fn add_u64_assign(&mut self, a: u64) {
        if let Some(v) = self.as_small() {
            *self = Nat::from(v as u128 + a as u128);
            return;
        }
        let spill = self.spill.as_mut().expect("inline handled above");
        let mut carry = a;
        for limb in spill.iter_mut() {
            if carry == 0 {
                return;
            }
            let (v, c) = limb.overflowing_add(carry);
            *limb = v;
            carry = c as u64;
        }
        if carry != 0 {
            let mut grown = std::mem::take(spill).into_vec();
            grown.push(carry);
            *spill = grown.into_boxed_slice();
        }
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $imp:ident) => {
        impl $trait<&Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                self.$imp(rhs)
            }
        }
        impl $trait<Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                (&self).$imp(&rhs)
            }
        }
        impl $trait<&Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                (&self).$imp(rhs)
            }
        }
        impl $trait<Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                self.$imp(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_nat);
forward_binop!(Mul, mul, mul_nat);

impl Sub<&Nat> for &Nat {
    type Output = Nat;
    fn sub(self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).expect("Nat subtraction underflow")
    }
}
impl Sub<Nat> for Nat {
    type Output = Nat;
    fn sub(self, rhs: Nat) -> Nat {
        &self - &rhs
    }
}
impl Sub<&Nat> for Nat {
    type Output = Nat;
    fn sub(self, rhs: &Nat) -> Nat {
        &self - rhs
    }
}

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        *self = self.add_nat(rhs);
    }
}
impl AddAssign<Nat> for Nat {
    fn add_assign(&mut self, rhs: Nat) {
        *self = self.add_nat(&rhs);
    }
}
impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        *self = &*self - rhs;
    }
}
impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        *self = self.mul_nat(rhs);
    }
}

impl Rem<&Nat> for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).1
    }
}

impl std::iter::Sum for Nat {
    fn sum<I: Iterator<Item = Nat>>(iter: I) -> Nat {
        iter.fold(Nat::zero(), |acc, x| acc + x)
    }
}

impl<'a> std::iter::Sum<&'a Nat> for Nat {
    fn sum<I: Iterator<Item = &'a Nat>>(iter: I) -> Nat {
        iter.fold(Nat::zero(), |acc, x| acc + x)
    }
}

impl std::iter::Product for Nat {
    fn product<I: Iterator<Item = Nat>>(iter: I) -> Nat {
        iter.fold(Nat::one(), |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use crate::Nat;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn ordering_by_length_then_limbs() {
        assert!(n(1 << 70) > n(u64::MAX as u128));
        assert!(n(5) < n(6));
        assert!(n(6) > n(5));
        assert_eq!(n(7).cmp(&n(7)), std::cmp::Ordering::Equal);
        assert!(Nat::zero() < Nat::one());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = n(u128::MAX);
        let b = a.add_nat(&Nat::one());
        assert_eq!(b.bits(), 129);
        assert_eq!(b.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn add_asymmetric_lengths() {
        assert_eq!(n(1 << 90) + n(3), n((1 << 90) + 3));
        assert_eq!(n(3) + n(1 << 90), n((1 << 90) + 3));
    }

    #[test]
    fn add_inline_operands_spill_exactly_at_the_boundary() {
        // u64::MAX + 1: smallest sum that no longer fits inline.
        let sum = n(u64::MAX as u128) + n(1);
        assert_eq!(sum, n(1u128 << 64));
        assert_eq!(sum.limbs().len(), 2);
        // u64::MAX + 0 stays inline.
        let stay = n(u64::MAX as u128) + n(0);
        assert_eq!(stay.size_bytes(), std::mem::size_of::<Nat>());
    }

    #[test]
    fn checked_sub_basics() {
        assert_eq!(n(10).checked_sub(&n(4)), Some(n(6)));
        assert_eq!(n(4).checked_sub(&n(10)), None);
        assert_eq!(n(10).checked_sub(&n(10)), Some(Nat::zero()));
        // borrow across a limb boundary
        let big = n(1u128 << 64);
        assert_eq!(big.checked_sub(&n(1)), Some(n((1u128 << 64) - 1)));
    }

    #[test]
    fn sub_re_inlines_across_the_spill_boundary() {
        // (2^64) - 1 fits one limb again: the result must be inline.
        let d = n(1u128 << 64).checked_sub(&n(1)).unwrap();
        assert_eq!(d.size_bytes(), std::mem::size_of::<Nat>());
        assert_eq!(d, n(u64::MAX as u128));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1) - n(2);
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!(n(0) * n(5), Nat::zero());
        assert_eq!(n(7) * n(6), n(42));
        let a = n(u64::MAX as u128);
        assert_eq!(&a * &a, n((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn mul_u64_assign_matches_mul() {
        let mut a = n(u128::MAX / 5);
        let b = a.clone() * n(1_000_003);
        a.mul_u64_assign(1_000_003);
        assert_eq!(a, b);
        a.mul_u64_assign(0);
        assert!(a.is_zero());
        // Inline × inline spilling into two limbs.
        let mut c = n(u64::MAX as u128);
        c.mul_u64_assign(u64::MAX);
        assert_eq!(c, n((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn add_u64_assign_carries() {
        let mut a = n(u64::MAX as u128);
        a.add_u64_assign(1);
        assert_eq!(a, n(1u128 << 64));
        a.add_u64_assign(0);
        assert_eq!(a, n(1u128 << 64));
        // Carry growing a full spill buffer.
        let mut b = n(u128::MAX);
        b.add_u64_assign(1);
        assert_eq!(b.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sum_and_product_iters() {
        let total: Nat = (1u64..=5).map(Nat::from).sum();
        assert_eq!(total, n(15));
        let prod: Nat = (1u64..=5).map(Nat::from).product();
        assert_eq!(prod, n(120));
        let empty_sum: Nat = std::iter::empty::<Nat>().sum();
        assert!(empty_sum.is_zero());
        let empty_prod: Nat = std::iter::empty::<Nat>().product();
        assert!(empty_prod.is_one());
    }
}
