//! Recursive-descent parser lowering the SQL subset directly to a
//! [`QuerySpec`] (via [`QueryBuilder`]) plus the optional USEPLAN number.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query   := SELECT select FROM tables [WHERE conj]
//!            [GROUP BY cols] [ORDER BY cols]
//!            [OPTION '(' USEPLAN number ')'] [';']
//! select  := '*' | item (',' item)*
//! item    := colref
//!          | (SUM|MIN|MAX|AVG) '(' colref ')'
//!          | COUNT '(' '*' ')'
//! tables  := table [AS? alias] (',' table [AS? alias])*
//! conj    := group (AND group)*
//! group   := pred | '(' conj ')'        -- grouping only; nested ANDs
//!                                          flatten into one conjunction
//! pred    := colref '=' colref          -- join edge
//!          | colref op literal          -- filter
//!          | literal op colref          -- filter, normalized by
//!                                          flipping op
//! colref  := [alias '.'] column
//! ```
//!
//! Semantic notes: unqualified columns resolve when exactly one FROM
//! relation has a column of that name; aggregate queries normalize their
//! output to `group-by columns ++ aggregates` (documented in the crate
//! root).

use crate::lexer::{lex, Token, TokenKind};
use crate::{ParseError, ParsedQuery};
use plansample_bignum::Nat;
use plansample_catalog::{Catalog, Datum};
use plansample_query::{AggFunc, CmpOp, ColRef, QueryBuilder, RelId};

struct Parser<'a> {
    catalog: &'a Catalog,
    tokens: Vec<Token>,
    pos: usize,
    sql_len: usize,
}

/// Parses one statement against `catalog`.
pub fn parse(catalog: &Catalog, sql: &str) -> Result<ParsedQuery, ParseError> {
    let tokens = lex(sql).map_err(|e| ParseError {
        message: e.message,
        offset: e.offset,
    })?;
    let mut parser = Parser {
        catalog,
        tokens,
        pos: 0,
        sql_len: sql.len(),
    };
    parser.query()
}

/// One SELECT item as parsed (before aggregate/projection shaping).
enum SelectItem {
    Col(Option<String>, String, usize),
    Agg(AggFunc, Option<(Option<String>, String, usize)>),
    Star,
}

impl Parser<'_> {
    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.sql_len)
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    /// Consumes an identifier matching `keyword` (case-insensitive).
    fn keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(keyword) => {
                self.pos += 1;
                Ok(())
            }
            Some(other) => self.error(format!("expected `{keyword}`, found {other}")),
            None => self.error(format!("expected `{keyword}`, found end of input")),
        }
    }

    fn at_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(keyword))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(other) => self.error(format!("expected {kind}, found {other}")),
            None => self.error(format!("expected {kind}, found end of input")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        let offset = self.offset();
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok((s, offset)),
            Some(other) => self.error(format!("expected {what}, found {other}")),
            None => self.error(format!("expected {what}, found end of input")),
        }
    }

    /// `[alias '.'] column`
    fn colref(&mut self) -> Result<(Option<String>, String, usize), ParseError> {
        let (first, offset) = self.ident("a column reference")?;
        if matches!(self.peek(), Some(TokenKind::Dot)) {
            self.pos += 1;
            let (col, _) = self.ident("a column name")?;
            Ok((Some(first), col, offset))
        } else {
            Ok((None, first, offset))
        }
    }

    fn query(&mut self) -> Result<ParsedQuery, ParseError> {
        self.keyword("SELECT")?;
        let select = self.select_list()?;
        self.keyword("FROM")?;

        let mut qb = QueryBuilder::new(self.catalog);
        // FROM list: aliases tracked for column resolution.
        let mut rels: Vec<(String, String)> = Vec::new(); // (alias, table)
        loop {
            let (table, offset) = self.ident("a table name")?;
            let alias = if self.at_keyword("AS") {
                self.pos += 1;
                Some(self.ident("an alias")?.0)
            } else if matches!(self.peek(), Some(TokenKind::Ident(s))
                if !is_clause_keyword(s))
            {
                Some(self.ident("an alias")?.0)
            } else {
                None
            };
            let alias = alias.unwrap_or_else(|| table.clone());
            qb.rel(&table, Some(&alias)).map_err(|e| ParseError {
                message: e.to_string(),
                offset,
            })?;
            rels.push((alias, table));
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }

        if self.at_keyword("WHERE") {
            self.pos += 1;
            self.conjunct(&mut qb, &rels)?;
        }

        let mut group_by: Vec<(String, String)> = Vec::new();
        if self.at_keyword("GROUP") {
            self.pos += 1;
            self.keyword("BY")?;
            loop {
                let (alias, col, offset) = self.colref()?;
                group_by.push(self.resolve(alias, col, offset, &rels)?);
                if matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        // ORDER BY: resolved to (alias, column) here, to ColRefs after
        // `build()` (which fixes the relation numbering).
        let mut order_cols: Vec<(String, String, usize)> = Vec::new();
        if self.at_keyword("ORDER") {
            self.pos += 1;
            self.keyword("BY")?;
            loop {
                let (alias, col, offset) = self.colref()?;
                let (alias, col) = self.resolve(alias, col, offset, &rels)?;
                order_cols.push((alias, col, offset));
                if matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        let useplan = self.option_clause()?;
        if matches!(self.peek(), Some(TokenKind::Semi)) {
            self.pos += 1;
        }
        if let Some(t) = self.peek() {
            return self.error(format!("unexpected trailing {t}"));
        }

        self.shape_output(&mut qb, select, group_by, &rels)?;
        let spec = qb.build().map_err(|e| ParseError {
            message: e.to_string(),
            offset: 0,
        })?;

        let mut order_by = Vec::with_capacity(order_cols.len());
        for (alias, col, offset) in order_cols {
            let rel = spec
                .relations
                .iter()
                .position(|r| r.alias == alias)
                .expect("resolve() only returns FROM-list aliases");
            let table = self.catalog.table(spec.relations[rel].table);
            let idx = table.column_index(&col).ok_or_else(|| ParseError {
                message: format!("relation `{alias}` has no column `{col}`"),
                offset,
            })?;
            order_by.push(ColRef {
                rel: RelId(rel as u32),
                col: idx as u32,
            });
        }
        Ok(ParsedQuery {
            spec,
            useplan,
            order_by,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        if matches!(self.peek(), Some(TokenKind::Star)) {
            self.pos += 1;
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        for (name, func) in [
            ("SUM", AggFunc::Sum),
            ("MIN", AggFunc::Min),
            ("MAX", AggFunc::Max),
            ("AVG", AggFunc::Avg),
            ("COUNT", AggFunc::CountStar),
        ] {
            if self.at_keyword(name)
                && matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::LParen)
                )
            {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let item = if func == AggFunc::CountStar {
                    self.expect(&TokenKind::Star)?;
                    SelectItem::Agg(func, None)
                } else {
                    SelectItem::Agg(func, Some(self.colref()?))
                };
                self.expect(&TokenKind::RParen)?;
                return Ok(item);
            }
        }
        let (alias, col, offset) = self.colref()?;
        Ok(SelectItem::Col(alias, col, offset))
    }

    /// Resolves a possibly-unqualified column to `(alias, column)`.
    fn resolve(
        &self,
        alias: Option<String>,
        col: String,
        offset: usize,
        rels: &[(String, String)],
    ) -> Result<(String, String), ParseError> {
        if let Some(a) = alias {
            if !rels.iter().any(|(alias, _)| *alias == a) {
                return Err(ParseError {
                    message: format!("unknown alias `{a}`"),
                    offset,
                });
            }
            return Ok((a, col));
        }
        let matches: Vec<&(String, String)> = rels
            .iter()
            .filter(|(_, table)| {
                self.catalog
                    .table_by_name(table)
                    .map(|(_, def)| def.column_index(&col).is_some())
                    .unwrap_or(false)
            })
            .collect();
        match matches.len() {
            0 => Err(ParseError {
                message: format!("unknown column `{col}`"),
                offset,
            }),
            1 => Ok((matches[0].0.clone(), col)),
            _ => Err(ParseError {
                message: format!(
                    "ambiguous column `{col}` (matches {})",
                    matches
                        .iter()
                        .map(|(a, _)| format!("`{a}.{col}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                offset,
            }),
        }
    }

    /// `conj := group (AND group)*` — a flat AND chain of groups, each
    /// a bare predicate or a parenthesized sub-conjunction. WHERE is
    /// purely conjunctive, so nested groups flatten: every predicate
    /// lands in the same builder regardless of grouping, and
    /// `(a AND b) AND c` means exactly `a AND b AND c`. A `(` is
    /// unambiguous here — no predicate starts with one (both sides of
    /// an operator are a column reference or a literal).
    fn conjunct(
        &mut self,
        qb: &mut QueryBuilder<'_>,
        rels: &[(String, String)],
    ) -> Result<(), ParseError> {
        loop {
            if matches!(self.peek(), Some(TokenKind::LParen)) {
                self.pos += 1;
                self.conjunct(qb, rels)?;
                self.expect(&TokenKind::RParen)?;
            } else {
                self.predicate(qb, rels)?;
            }
            if self.at_keyword("AND") {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn predicate(
        &mut self,
        qb: &mut QueryBuilder<'_>,
        rels: &[(String, String)],
    ) -> Result<(), ParseError> {
        // Literal-first filter (`5 < col`): parse the literal, the
        // operator, then require a column and normalize by flipping the
        // operator onto the canonical `col op literal` shape.
        if matches!(self.peek(), Some(TokenKind::Number(_) | TokenKind::Str(_))) {
            let value = self.literal()?;
            let op = self.comparison_op()?;
            let (ralias, rcol, roffset) = self.colref()?;
            let (ra, rc) = self.resolve(ralias, rcol, roffset, rels)?;
            return qb
                .filter((&ra, &rc), op.reversed(), value)
                .map_err(|e| ParseError {
                    message: e.to_string(),
                    offset: roffset,
                });
        }
        let (lalias, lcol, loffset) = self.colref()?;
        let (la, lc) = self.resolve(lalias, lcol, loffset, rels)?;
        let op_offset = self.offset();
        let op = self.comparison_op()?;
        match self.peek() {
            Some(TokenKind::Ident(_)) => {
                // column-to-column: join edge (equality only)
                let (ralias, rcol, roffset) = self.colref()?;
                let (ra, rc) = self.resolve(ralias, rcol, roffset, rels)?;
                if op != CmpOp::Eq {
                    return Err(ParseError {
                        message: "only equality joins are supported between columns".into(),
                        offset: op_offset,
                    });
                }
                qb.join((&la, &lc), (&ra, &rc)).map_err(|e| ParseError {
                    message: e.to_string(),
                    offset: roffset,
                })
            }
            _ => {
                let offset = self.offset();
                let value = self.literal()?;
                qb.filter((&la, &lc), op, value).map_err(|e| ParseError {
                    message: e.to_string(),
                    offset,
                })
            }
        }
    }

    fn comparison_op(&mut self) -> Result<CmpOp, ParseError> {
        let op_offset = self.offset();
        match self.next() {
            Some(TokenKind::Eq) => Ok(CmpOp::Eq),
            Some(TokenKind::Ne) => Ok(CmpOp::Ne),
            Some(TokenKind::Lt) => Ok(CmpOp::Lt),
            Some(TokenKind::Le) => Ok(CmpOp::Le),
            Some(TokenKind::Gt) => Ok(CmpOp::Gt),
            Some(TokenKind::Ge) => Ok(CmpOp::Ge),
            Some(other) => Err(ParseError {
                message: format!("expected a comparison operator, found {other}"),
                offset: op_offset,
            }),
            None => Err(ParseError {
                message: "expected a comparison operator, found end of input".into(),
                offset: op_offset,
            }),
        }
    }

    fn literal(&mut self) -> Result<Datum, ParseError> {
        let offset = self.offset();
        match self.next() {
            Some(TokenKind::Number(digits)) => {
                if digits.contains('.') {
                    digits
                        .parse::<f64>()
                        .map(Datum::Float)
                        .map_err(|_| ParseError {
                            message: format!("invalid float literal `{digits}`"),
                            offset,
                        })
                } else {
                    digits
                        .parse::<i64>()
                        .map(Datum::Int)
                        .map_err(|_| ParseError {
                            message: format!("integer literal `{digits}` out of range"),
                            offset,
                        })
                }
            }
            Some(TokenKind::Str(s)) => Ok(Datum::Str(s)),
            Some(other) => Err(ParseError {
                message: format!("expected a literal, found {other}"),
                offset,
            }),
            None => Err(ParseError {
                message: "expected a literal, found end of input".into(),
                offset,
            }),
        }
    }

    /// `OPTION '(' USEPLAN number ')'`
    fn option_clause(&mut self) -> Result<Option<Nat>, ParseError> {
        if !self.at_keyword("OPTION") {
            return Ok(None);
        }
        self.pos += 1;
        self.expect(&TokenKind::LParen)?;
        self.keyword("USEPLAN")?;
        let offset = self.offset();
        let digits = match self.next() {
            Some(TokenKind::Number(d)) if !d.contains('.') => d,
            Some(other) => {
                return Err(ParseError {
                    message: format!("expected a plan number, found {other}"),
                    offset,
                })
            }
            None => {
                return Err(ParseError {
                    message: "expected a plan number, found end of input".into(),
                    offset,
                })
            }
        };
        let n = digits.parse::<Nat>().map_err(|e| ParseError {
            message: e.to_string(),
            offset,
        })?;
        self.expect(&TokenKind::RParen)?;
        Ok(Some(n))
    }

    /// Installs projection or aggregate on the builder from the SELECT
    /// shape and GROUP BY list.
    fn shape_output(
        &self,
        qb: &mut QueryBuilder<'_>,
        select: Vec<SelectItem>,
        group_by: Vec<(String, String)>,
        rels: &[(String, String)],
    ) -> Result<(), ParseError> {
        let has_aggs = select.iter().any(|i| matches!(i, SelectItem::Agg(_, _)));
        if !has_aggs && group_by.is_empty() {
            // plain projection (or SELECT *)
            let mut cols: Vec<(String, String)> = Vec::new();
            for item in select {
                match item {
                    SelectItem::Star => return Ok(()), // no projection
                    SelectItem::Col(alias, col, offset) => {
                        cols.push(self.resolve(alias, col, offset, rels)?);
                    }
                    SelectItem::Agg(..) => unreachable!("has_aggs is false"),
                }
            }
            let refs: Vec<(&str, &str)> =
                cols.iter().map(|(a, c)| (a.as_str(), c.as_str())).collect();
            qb.project(&refs).map_err(|e| ParseError {
                message: e.to_string(),
                offset: 0,
            })?;
            return Ok(());
        }

        // Aggregate query: non-aggregate select items must appear in
        // GROUP BY; output is normalized to group-by ++ aggregates.
        let mut aggs: Vec<(AggFunc, Option<(String, String)>)> = Vec::new();
        for item in select {
            match item {
                SelectItem::Star => {
                    return Err(ParseError {
                        message: "SELECT * cannot be combined with aggregates".into(),
                        offset: 0,
                    })
                }
                SelectItem::Col(alias, col, offset) => {
                    let resolved = self.resolve(alias, col, offset, rels)?;
                    if !group_by.contains(&resolved) {
                        return Err(ParseError {
                            message: format!(
                                "column `{}.{}` must appear in GROUP BY",
                                resolved.0, resolved.1
                            ),
                            offset,
                        });
                    }
                }
                SelectItem::Agg(func, arg) => {
                    let arg = match arg {
                        None => None,
                        Some((alias, col, offset)) => Some(self.resolve(alias, col, offset, rels)?),
                    };
                    aggs.push((func, arg));
                }
            }
        }
        let group_refs: Vec<(&str, &str)> = group_by
            .iter()
            .map(|(a, c)| (a.as_str(), c.as_str()))
            .collect();
        let agg_refs: Vec<(AggFunc, Option<(&str, &str)>)> = aggs
            .iter()
            .map(|(f, arg)| (*f, arg.as_ref().map(|(a, c)| (a.as_str(), c.as_str()))))
            .collect();
        qb.aggregate(&group_refs, &agg_refs)
            .map_err(|e| ParseError {
                message: e.to_string(),
                offset: 0,
            })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    ["WHERE", "GROUP", "OPTION", "ON", "AND", "ORDER", "AS"]
        .iter()
        .any(|k| s.eq_ignore_ascii_case(k))
}
