//! Counter-accounting test for the serving front end, driven through a
//! forced overload: with the global inflight bound pinned to 1, a
//! pipelined burst must shed most of its requests with a typed
//! `Overloaded` reply — and the admission ledger must still balance
//! exactly: `requests` counts every decoded frame (shed or not),
//! `requests_admitted` only those that reached the execution layer, and
//! the two differ by precisely `shed_queue`. This is the regression
//! test for the undercount where queue-shed requests never reached the
//! `requests` counter at all.

use plansample_serve::server::{self, ServerConfig};
use plansample_serve::wire::{self, ErrorCode, Request, Response};
use plansample_serve::{AdmissionConfig, Workload};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A join heavy enough that its first optimization keeps the single
/// admission slot occupied while the rest of the burst decodes.
const SQL: &str = "SELECT n_name, COUNT(*) FROM supplier s, nation n, region r \
     WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
     GROUP BY n.n_name";

const BURST: u64 = 8;

#[test]
fn queue_sheds_are_counted_and_the_admission_ledger_balances() {
    let handle = server::start(ServerConfig {
        reactors: 1,
        workers: 1,
        admission: AdmissionConfig {
            max_inflight: 1,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server starts");

    // One raw connection writes the whole burst in a single syscall, so
    // the reactor decodes the tail of the burst while the head is still
    // occupying the one admission slot.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut burst = Vec::new();
    for id in 0..BURST {
        burst.extend_from_slice(&wire::frame(
            &Request::Count(Workload::Sql(SQL.into())).encode(id),
        ));
    }
    stream.write_all(&burst).expect("burst written");

    // Every request in the burst is answered — shed ones with a typed
    // `Overloaded`, admitted ones with the count.
    let mut counted = 0u64;
    let mut overloaded = 0u64;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while counted + overloaded < BURST {
        if let Some((payload, consumed)) = wire::split_frame(&buf).expect("valid reply frame") {
            let (_, reply) = Response::decode(payload).expect("reply decodes");
            buf.drain(..consumed);
            match reply {
                Response::Count(total) => {
                    assert!(!total.is_zero());
                    counted += 1;
                }
                Response::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::Overloaded, "only overload sheds expected");
                    overloaded += 1;
                }
                other => panic!("unexpected reply: {other:?}"),
            }
            continue;
        }
        let n = stream.read(&mut chunk).expect("read replies");
        assert!(n > 0, "server closed mid-burst");
        buf.extend_from_slice(&chunk[..n]);
    }
    assert!(counted >= 1, "at least the head of the burst is admitted");
    assert!(
        overloaded >= 1,
        "an 8-deep burst against a 1-slot queue must shed"
    );

    // All replies are in, so the counters are settled. The ledger:
    // every decoded frame is in `requests`, and it splits exactly into
    // admitted + queue-shed.
    let stats = handle.state().stats();
    assert_eq!(stats.requests, BURST, "sheds must not undercount requests");
    assert_eq!(stats.requests_admitted, counted);
    assert_eq!(stats.shed_queue, overloaded);
    assert_eq!(
        stats.requests,
        stats.requests_admitted + stats.shed_queue,
        "admission ledger out of balance: {stats:?}"
    );
    handle.stop();
}
