//! §3.2 — Counting query plans.
//!
//! Bottom-up over the materialized links:
//!
//! ```text
//!   b_v(i) = Σ_j N(w_ij)            alternatives for child slot i
//!   B_v(k) = Π_{i≤k} b_v(i)         combined choices of the first k slots
//!   N(v)   = 1 if |v| = 0,  else B_v(|v|)
//!   N      = Σ_{v ∈ G_root} N(v)
//! ```
//!
//! Counts are exact [`Nat`]s: Table 1 of the paper reports spaces above
//! 4·10^12, and counts overflow any fixed-width integer as queries grow.
//!
//! The pass is an iterative walk over the topological order the links
//! precomputed (children before parents), filling one flat `Vec<Nat>`
//! indexed by [`DenseId`] — no recursion, no memo-cache clones — and it
//! runs the order's independent *levels* in parallel with a
//! deterministic merge (see [`Counts::compute`]). The per-slot totals
//! `b_v(i)` are computed once per *interned* alternative list and kept
//! ([`Counts::list_total`]), so unranking, ranking, and sampling read
//! them instead of re-summing alternatives on every mixed-radix step.
//! Each expression and each list entry is visited exactly once — the
//! paper's linear-time claim, benchmarked in `plansample-bench`
//! (`build_scaling`).

use crate::{links::ListId, Links, SpaceError};
use plansample_bignum::Nat;
use plansample_memo::DenseId;

/// Exact plan counts for every expression plus the space total and the
/// precomputed per-list slot totals, all in flat dense-indexed buffers.
#[derive(Debug, Clone)]
pub struct Counts {
    /// `N(v)` by dense id.
    per_expr: Vec<Nat>,
    /// `b` of each interned alternative list (the slot totals).
    list_totals: Vec<Nat>,
    /// `N`: the whole-space total.
    total: Nat,
    /// Single-limb sidecar for the allocation-free unrank fast path;
    /// present iff every count in the space fits one `u64` limb.
    fast: Option<FastCounts>,
    /// Two-limb sidecar, the middle rung of the tier ladder; built iff
    /// the single-limb sidecar does not apply but every count fits
    /// `u128`.
    wide: Option<WideCounts>,
}

/// Which fixed-width arithmetic the flat unranking hot path can run in
/// on a given space — the tier ladder `u64` → `u128` → exact [`Nat`].
///
/// The tier is a property of the counts alone: [`CountTier::U64`] iff
/// every count fits one limb, [`CountTier::U128`] iff some count needs
/// two limbs but none needs three, [`CountTier::Nat`] otherwise. In
/// the synthetic suite: everything through Q8+CP is `U64`, clique-9
/// and clique-10 are `U128`, and only spaces past ~3.4·10³⁸ plans pay
/// the exact-arithmetic fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountTier {
    /// Every count fits one machine word: the fastest unranking path.
    U64,
    /// Every count fits two limbs; unranking runs in `u128`.
    U128,
    /// Some count needs three or more limbs; unranking is exact-`Nat`.
    Nat,
}

impl CountTier {
    /// Stable lower-case label (`"u64"` / `"u128"` / `"nat"`) — the
    /// value the benchmark artifacts and CLI output print.
    pub fn as_str(self) -> &'static str {
        match self {
            CountTier::U64 => "u64",
            CountTier::U128 => "u128",
            CountTier::Nat => "nat",
        }
    }
}

impl std::fmt::Display for CountTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Flat `u64` copies of every count — the operands of the fast-path
/// mixed-radix decomposition, which replaces per-step `Nat` borrows and
/// comparisons with plain integer arithmetic.
///
/// The sidecar is built only when **all** per-expression counts and
/// **all** list totals fit `u64`. Per-value gating would be wrong in
/// both directions: a space whose total fits can still be probed at any
/// expression via the rooted sub-space API, and (because a sibling slot
/// with an *empty* list zeroes a parent product) an individual `N(v)`
/// can exceed the space total, so "total fits" does not imply "all
/// values fit". All-or-nothing keeps the criterion one branch on the
/// hot path.
///
/// # Layout
///
/// The per-alternative counts are **pool-aligned**: `pool[i]` is the
/// count of the expression at position `i` of the links' concatenated
/// list pool, so the operator-selection scan over list `l` reads the
/// contiguous slice at [`Links::list_range`] — the layout the chunked
/// prefix scan in `unrank.rs` requires (a dense-id-indexed mirror would
/// force a gather per element). Cost: 8 bytes per *pooled link* + 8 per
/// interned list, charged to [`Counts::size_bytes`].
#[derive(Debug, Clone)]
pub(crate) struct FastCounts {
    /// `N(w)` of each pooled list member, aligned with the links pool.
    pool: Vec<u64>,
    /// `b` of each interned list.
    list_totals: Vec<u64>,
}

impl FastCounts {
    /// The member counts of one interned list as a contiguous slice;
    /// `range` must come from [`Links::list_range`].
    #[inline]
    pub(crate) fn pool_counts(&self, range: std::ops::Range<usize>) -> &[u64] {
        &self.pool[range]
    }

    /// `b_v(i)` of one interned list as a single limb.
    #[inline]
    pub(crate) fn list_total(&self, l: ListId) -> u64 {
        self.list_totals[l.idx()]
    }

    /// Heap bytes of the sidecar buffers (the inline struct is already
    /// part of `size_of::<Counts>()`).
    fn size_bytes(&self) -> usize {
        self.pool.capacity() * std::mem::size_of::<u64>()
            + self.list_totals.capacity() * std::mem::size_of::<u64>()
    }
}

/// Two-limb (`u128`) mirror of [`FastCounts`] — same all-or-nothing
/// criterion one rung up the ladder, same pool-aligned layout, double
/// the bytes per entry. Present only when the `u64` sidecar is not
/// (the ladder never stores both).
#[derive(Debug, Clone)]
pub(crate) struct WideCounts {
    /// `N(w)` of each pooled list member, aligned with the links pool.
    pool: Vec<u128>,
    /// `b` of each interned list.
    list_totals: Vec<u128>,
}

impl WideCounts {
    /// The member counts of one interned list as a contiguous slice;
    /// `range` must come from [`Links::list_range`].
    #[inline]
    pub(crate) fn pool_counts(&self, range: std::ops::Range<usize>) -> &[u128] {
        &self.pool[range]
    }

    /// `b_v(i)` of one interned list in two limbs.
    #[inline]
    pub(crate) fn list_total(&self, l: ListId) -> u128 {
        self.list_totals[l.idx()]
    }

    /// Heap bytes of the sidecar buffers.
    fn size_bytes(&self) -> usize {
        self.pool.capacity() * std::mem::size_of::<u128>()
            + self.list_totals.capacity() * std::mem::size_of::<u128>()
    }
}

impl Counts {
    /// Smallest number of same-level expressions (or lists) worth a
    /// worker thread; below this a stratum is filled inline.
    const PAR_MIN_NODES: usize = 512;

    /// Computes all counts over `links.topo()`.
    ///
    /// The fill processes the topological order in *levels* — independent
    /// strata of the condensed expr↔list DAG, where
    /// `level(list) = 1 + max level(member)` and
    /// `level(expr) = max level(its lists)`. Everything a node reads was
    /// computed in a strictly earlier stratum, so each stratum's sums and
    /// products fan out across the `threadpool` workers; results are
    /// merged back in index order. Every value is produced by exactly one
    /// task using the same operand order as the sequential walk, so
    /// counts are **bit-identical at every thread count** (asserted by
    /// `tests/build_determinism.rs` and the bijection suites).
    pub fn compute(links: &Links) -> Counts {
        let mut per_expr: Vec<Nat> = vec![Nat::zero(); links.num_exprs()];
        let mut list_totals: Vec<Nat> = vec![Nat::zero(); links.num_lists()];

        // One linear pass assigns strata (children before parents, so
        // every referenced node is already levelled).
        let mut expr_level: Vec<u32> = vec![0; links.num_exprs()];
        let mut list_level: Vec<u32> = vec![u32::MAX; links.num_lists()];
        let level_of_list = |l: ListId, expr_level: &[u32], list_level: &mut Vec<u32>| {
            if list_level[l.idx()] == u32::MAX {
                list_level[l.idx()] = 1 + links
                    .list(l)
                    .iter()
                    .map(|&w| expr_level[w.idx()])
                    .max()
                    .unwrap_or(0);
            }
            list_level[l.idx()]
        };
        let mut max_level = 0u32;
        for &d in links.topo() {
            let level = links
                .slot_lists(d)
                .iter()
                .map(|&l| level_of_list(l, &expr_level, &mut list_level))
                .max()
                .unwrap_or(0);
            expr_level[d.idx()] = level;
            max_level = max_level.max(level);
        }
        // The root list is interned like any other but need not be any
        // slot's list; level it too so the stratum loop computes it.
        let root = links.root_list();
        max_level = max_level.max(level_of_list(root, &expr_level, &mut list_level));

        // Bucket nodes by stratum.
        let mut exprs_at = vec![Vec::new(); max_level as usize + 1];
        for &d in links.topo() {
            exprs_at[expr_level[d.idx()] as usize].push(d);
        }
        let mut lists_at = vec![Vec::new(); max_level as usize + 1];
        for l in 0..links.num_lists() as u32 {
            if list_level[l as usize] != u32::MAX {
                lists_at[list_level[l as usize] as usize].push(ListId::new(l));
            }
        }

        // Fill stratum by stratum: first each level's list totals b (sums
        // of already-counted members), then its expression counts N
        // (products of already-computed b's).
        for level in 0..=max_level as usize {
            let lists = &lists_at[level];
            let totals = threadpool::parallel_map(lists.len(), Self::PAR_MIN_NODES, |i| {
                links
                    .list(lists[i])
                    .iter()
                    .map(|&w| &per_expr[w.idx()])
                    .sum::<Nat>()
            });
            for (&l, b) in lists.iter().zip(totals) {
                list_totals[l.idx()] = b;
            }

            let exprs = &exprs_at[level];
            let counts = threadpool::parallel_map(exprs.len(), Self::PAR_MIN_NODES, |i| {
                let slots = links.slot_lists(exprs[i]);
                if slots.is_empty() {
                    Nat::one()
                } else {
                    let mut product = Nat::one();
                    for &l in slots {
                        product *= &list_totals[l.idx()]; // b = 0 ⇒ no completable plan here
                    }
                    product
                }
            });
            for (&d, n) in exprs.iter().zip(counts) {
                per_expr[d.idx()] = n;
            }
        }

        let total = list_totals[root.idx()].clone();
        let (fast, wide) = Self::sidecars(links, &per_expr, &list_totals);
        Counts {
            per_expr,
            list_totals,
            total,
            fast,
            wide,
        }
    }

    /// Builds the fixed-width sidecar ladder: the single-limb sidecar
    /// when every count fits `u64`, else the two-limb sidecar when every
    /// count fits `u128`, else neither (shared by
    /// [`compute`](Self::compute) and [`from_parts`](Self::from_parts)
    /// so loaded artifacts get the fast paths too). At most one rung is
    /// ever stored.
    fn sidecars(
        links: &Links,
        per_expr: &[Nat],
        list_totals: &[Nat],
    ) -> (Option<FastCounts>, Option<WideCounts>) {
        if let Some(fast) = Self::fast_sidecar(links, per_expr, list_totals) {
            (Some(fast), None)
        } else {
            (None, Self::wide_sidecar(links, per_expr, list_totals))
        }
    }

    /// The `u64` rung: all-or-nothing over **every** count (not just the
    /// pooled ones — the rooted sub-space API can probe any expression),
    /// then a pool-aligned mirror of the per-alternative counts.
    fn fast_sidecar(links: &Links, per_expr: &[Nat], list_totals: &[Nat]) -> Option<FastCounts> {
        let per_expr: Option<Vec<u64>> = per_expr.iter().map(Nat::to_u64).collect();
        let per_expr = per_expr?;
        let list_totals: Option<Vec<u64>> = list_totals.iter().map(Nat::to_u64).collect();
        let pool = links
            .pool_exprs()
            .iter()
            .map(|&w| per_expr[w.idx()])
            .collect();
        Some(FastCounts {
            pool,
            list_totals: list_totals?,
        })
    }

    /// The `u128` rung, same shape two limbs up.
    fn wide_sidecar(links: &Links, per_expr: &[Nat], list_totals: &[Nat]) -> Option<WideCounts> {
        let per_expr: Option<Vec<u128>> = per_expr.iter().map(Nat::to_u128).collect();
        let per_expr = per_expr?;
        let list_totals: Option<Vec<u128>> = list_totals.iter().map(Nat::to_u128).collect();
        let pool = links
            .pool_exprs()
            .iter()
            .map(|&w| per_expr[w.idx()])
            .collect();
        Some(WideCounts {
            pool,
            list_totals: list_totals?,
        })
    }

    /// Reassembles counts from raw vectors (the artifact load path).
    /// Validates the shapes against `links` and re-derives the space
    /// total from the root list so the three fields cannot disagree.
    /// Numeric *values* are vouched for by the artifact checksum, not
    /// re-counted here — that is the whole point of loading.
    pub fn from_parts(
        links: &Links,
        per_expr: Vec<Nat>,
        list_totals: Vec<Nat>,
    ) -> Result<Counts, SpaceError> {
        if per_expr.len() != links.num_exprs() {
            return Err(SpaceError::MalformedParts {
                reason: "per-expression counts must cover every expression".to_string(),
            });
        }
        if list_totals.len() != links.num_lists() {
            return Err(SpaceError::MalformedParts {
                reason: "list totals must cover every interned list".to_string(),
            });
        }
        let total = list_totals[links.root_list().idx()].clone();
        let (fast, wide) = Self::sidecars(links, &per_expr, &list_totals);
        Ok(Counts {
            per_expr,
            list_totals,
            total,
            fast,
            wide,
        })
    }

    /// `N(v)` for every expression, dense-indexed — the serialization
    /// view (see `plansample-artifact`).
    pub fn per_expr(&self) -> &[Nat] {
        &self.per_expr
    }

    /// `b` of every interned list, list-indexed — the serialization
    /// view.
    pub fn list_totals(&self) -> &[Nat] {
        &self.list_totals
    }

    /// `N(v)`: plans rooted in expression `d`.
    #[inline]
    pub fn rooted(&self, d: DenseId) -> &Nat {
        &self.per_expr[d.idx()]
    }

    /// `b_v(i)`: total alternatives of one interned child list (the sum
    /// of the counts of its eligible children), precomputed at build
    /// time.
    #[inline]
    pub fn list_total(&self, l: ListId) -> &Nat {
        &self.list_totals[l.idx()]
    }

    /// `N`: plans rooted in any root-group expression — the size of the
    /// complete search space.
    pub fn total(&self) -> &Nat {
        &self.total
    }

    /// Whether the single-limb fast path applies to this space: every
    /// per-expression count and list total fits one `u64` limb. Spaces
    /// past ~1.8·10^19 plans (clique-9 and up in the synthetic suite)
    /// step down the tier ladder instead.
    pub fn has_fast_path(&self) -> bool {
        self.fast.is_some()
    }

    /// Whether the two-limb (`u128`) tier applies: the `u64` sidecar
    /// does not, but every count fits `u128`. Clique-9 and clique-10
    /// land here; only spaces past ~3.4·10^38 plans pay the exact-`Nat`
    /// fallback.
    pub fn has_wide_path(&self) -> bool {
        self.wide.is_some()
    }

    /// Which rung of the tier ladder this space's flat sampler runs on.
    pub fn tier(&self) -> CountTier {
        if self.fast.is_some() {
            CountTier::U64
        } else if self.wide.is_some() {
            CountTier::U128
        } else {
            CountTier::Nat
        }
    }

    /// The single-limb sidecar, when the space qualifies.
    #[inline]
    pub(crate) fn fast(&self) -> Option<&FastCounts> {
        self.fast.as_ref()
    }

    /// The two-limb sidecar, when the space sits on that rung.
    #[inline]
    pub(crate) fn wide(&self) -> Option<&WideCounts> {
        self.wide.as_ref()
    }

    /// Caps the tier ladder at `tier`, dropping (or rebuilding) sidecars
    /// as needed — a benchmarking/testing seam for exercising the slower
    /// rungs on spaces that qualify for a faster one. Forcing `U64` is a
    /// no-op (a space that lacks the sidecar cannot gain it); forcing
    /// `U128` drops the `u64` sidecar and builds the two-limb one if all
    /// counts fit; forcing `Nat` drops both.
    pub(crate) fn force_tier(&mut self, links: &Links, tier: CountTier) {
        match tier {
            CountTier::U64 => {}
            CountTier::U128 => {
                if self.fast.take().is_some() && self.wide.is_none() {
                    self.wide = Self::wide_sidecar(links, &self.per_expr, &self.list_totals);
                }
            }
            CountTier::Nat => {
                self.fast = None;
                self.wide = None;
            }
        }
    }

    /// Bytes of memory held by the count buffers, including every limb
    /// allocation and the fixed-width sidecars, capacity-accurate.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.per_expr.iter().map(Nat::size_bytes).sum::<usize>()
            + self.list_totals.iter().map(Nat::size_bytes).sum::<usize>()
            + (self.per_expr.capacity() - self.per_expr.len()) * std::mem::size_of::<Nat>()
            + (self.list_totals.capacity() - self.list_totals.len()) * std::mem::size_of::<Nat>()
            + self.total.size_bytes()
            + self.fast.as_ref().map_or(0, FastCounts::size_bytes)
            + self.wide.as_ref().map_or(0, WideCounts::size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_example_counts() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let counts = Counts::compute(&links);
        let rooted = |id| counts.rooted(links.ids().dense(id));

        // Leaves count 1.
        for id in [ex.table_scan_a, ex.idx_scan_a, ex.idx_scan_b, ex.idx_scan_c] {
            assert_eq!(rooted(id), &Nat::one(), "{id}");
        }
        // Sort_A has exactly one sortable input (the TableScan).
        assert_eq!(rooted(ex.sort_a).to_u64(), Some(1));
        // HashJoin(A,B) = 3 × 2, MergeJoin(A,B) = 2 × 1.
        assert_eq!(rooted(ex.hash_join_ab).to_u64(), Some(6));
        assert_eq!(rooted(ex.merge_join_ab).to_u64(), Some(2));
        // Roots: 2 × (6+2) = 16 each; space total 32.
        assert_eq!(rooted(ex.root_c_ab).to_u64(), Some(16));
        assert_eq!(rooted(ex.root_ab_c).to_u64(), Some(16));
        assert_eq!(counts.total().to_u64(), Some(32));
    }

    #[test]
    fn slot_totals_are_precomputed_per_list() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let counts = Counts::compute(&links);
        let slots = links.slot_lists(links.ids().dense(ex.root_c_ab));
        assert_eq!(counts.list_total(slots[0]).to_u64(), Some(2)); // group C
        assert_eq!(counts.list_total(slots[1]).to_u64(), Some(8)); // group AB
                                                                   // Every precomputed total matches a fresh sum over its list.
        for (d, _) in links.ids().iter() {
            for &l in links.slot_lists(d) {
                let fresh: Nat = links.list(l).iter().map(|&w| counts.rooted(w)).sum();
                assert_eq!(&fresh, counts.list_total(l));
            }
        }
    }

    #[test]
    fn tier_ladder_and_force_tier() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let mut counts = Counts::compute(&links);
        assert_eq!(counts.tier(), CountTier::U64);
        assert!(counts.has_fast_path() && !counts.has_wide_path());

        // The pool mirror is aligned with the links pool: each list's
        // contiguous slice holds exactly its members' rooted counts.
        let fast = counts.fast().unwrap().clone();
        for (d, _) in links.ids().iter() {
            for &l in links.slot_lists(d) {
                let mirror = fast.pool_counts(links.list_range(l));
                for (&w, &n) in links.list(l).iter().zip(mirror) {
                    assert_eq!(counts.rooted(w).to_u64(), Some(n));
                }
            }
        }

        // Forcing down the ladder rebuilds the wide rung from the exact
        // counts; forcing to Nat drops every sidecar.
        counts.force_tier(&links, CountTier::U128);
        assert_eq!(counts.tier(), CountTier::U128);
        let wide = counts.wide().unwrap();
        let root = links.root_list();
        assert_eq!(wide.list_total(root), counts.total().to_u128().unwrap());
        counts.force_tier(&links, CountTier::Nat);
        assert_eq!(counts.tier(), CountTier::Nat);
        assert_eq!(counts.tier().as_str(), "nat");
        assert_eq!(counts.tier().to_string(), "nat");
    }

    #[test]
    fn size_bytes_counts_every_nat() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let counts = Counts::compute(&links);
        assert!(counts.size_bytes() >= links.num_exprs() * std::mem::size_of::<Nat>());
    }
}
