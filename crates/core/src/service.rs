//! A concurrent serving surface over prepared queries.
//!
//! [`PlanService`] is the piece the ROADMAP's "serve heavy traffic"
//! north star asks for: a bounded, LRU-evicting cache of
//! [`PreparedQuery`] artifacts keyed by the *normalized* query plus the
//! optimizer configuration. The first request for a query pays the
//! optimization + counting cost; every subsequent request — from any
//! thread — gets an [`Arc`] handle to the same immutable artifact and
//! serves counts, pages, and samples lock-free (the cache lock is held
//! only for the key lookup, never during optimization or sampling).
//!
//! Two bounds are supported, separately or together:
//!
//! * an **entry capacity** (classic LRU count), and
//! * a **byte budget**: entries are charged their real
//!   [`PreparedQuery::size_bytes`] (the flat link/count buffers plus the
//!   memo) and the LRU tail is evicted until the resident total fits.
//!   A single artifact larger than the whole budget is still admitted —
//!   the cache then holds exactly that one entry — so pathological
//!   queries degrade to "no caching" rather than a livelock.
//!
//! Racing first preparations of the same key are *single-flighted*: the
//! first thread optimizes, every concurrent requester for the same key
//! blocks on that flight and adopts its artifact, so a thundering herd
//! performs one optimization in total (observable via
//! [`ServiceStats::coalesced`] and the optimizer's
//! `thread_optimizations_performed` counter).

use crate::{Error, PreparedQuery};
use plansample_catalog::Catalog;
use plansample_optimizer::OptimizerConfig;
use plansample_query::QuerySpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Snapshot of a service's cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to prepare (optimize + count) the query.
    pub misses: u64,
    /// Requests that joined another thread's in-flight preparation
    /// instead of optimizing themselves (singleflight adoptions).
    pub coalesced: u64,
    /// Prepared artifacts evicted by the LRU policy (count or byte
    /// bound).
    pub evictions: u64,
    /// Prepared artifacts currently cached.
    pub entries: usize,
    /// First preparations currently in flight (leader optimizing,
    /// possibly with waiters coalesced onto it). The admission-control
    /// signal a serving front-end sheds new preparations on.
    pub inflight: usize,
    /// Bytes held by the cached artifacts
    /// (Σ [`PreparedQuery::size_bytes`]).
    pub resident_bytes: usize,
    /// Maximum cached artifacts (`usize::MAX` when only byte-bounded).
    pub capacity: usize,
    /// Byte budget, if the service is byte-bounded.
    pub byte_budget: Option<usize>,
}

struct CacheEntry {
    prepared: Arc<PreparedQuery>,
    size_bytes: usize,
    last_used: u64,
}

/// One in-flight first preparation, shared by the leader and any
/// requesters that arrive while it runs.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Pending,
    Done(Result<Arc<PreparedQuery>, Error>),
    /// The leader unwound without a result (a panic inside `prepare`);
    /// waiters retry from scratch.
    Abandoned,
}

struct CacheState {
    entries: HashMap<String, CacheEntry>,
    inflight: HashMap<String, Arc<Flight>>,
    resident_bytes: usize,
    tick: u64,
    evictions: u64,
}

impl CacheState {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts LRU entries until both bounds hold. At least one entry is
    /// always kept, so an artifact larger than the byte budget does not
    /// evict itself (the cache degrades to single-entry, not to a
    /// livelock).
    fn enforce_bounds(&mut self, capacity: usize, byte_budget: Option<usize>) {
        let over = |s: &CacheState| {
            s.entries.len() > capacity
                || byte_budget.is_some_and(|b| s.resident_bytes > b && s.entries.len() > 1)
        };
        while over(self) {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over-bound cache is non-empty");
            let removed = self.entries.remove(&oldest).expect("key just observed");
            self.resident_bytes -= removed.size_bytes;
            self.evictions += 1;
        }
    }
}

/// A bounded LRU cache of prepared queries, safe to share across
/// threads, with a normalized-query + optimizer-config key.
///
/// ```
/// use plansample::PlanService;
/// use plansample_optimizer::OptimizerConfig;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let (catalog, _) = plansample_catalog::tpch::catalog();
/// let service = Arc::new(PlanService::new(catalog, OptimizerConfig::default(), 8));
/// let query = plansample_query::tpch::q6(service.catalog());
///
/// // First call prepares; later calls (any thread) hit the cache.
/// let p1 = service.get_or_prepare(&query).unwrap();
/// let p2 = service.get_or_prepare(&query).unwrap();
/// assert!(Arc::ptr_eq(&p1, &p2));
/// assert_eq!(service.stats().misses, 1);
/// assert_eq!(service.stats().hits, 1);
/// assert_eq!(service.stats().resident_bytes, p1.size_bytes());
///
/// let mut rng = StdRng::seed_from_u64(1);
/// assert_eq!(p1.sample_batch(&mut rng, 10).len(), 10);
/// ```
pub struct PlanService {
    catalog: Catalog,
    config: OptimizerConfig,
    capacity: usize,
    byte_budget: Option<usize>,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    /// Write-through persistence hook: called with every freshly
    /// prepared artifact, outside all cache locks (see
    /// [`set_persist`](Self::set_persist)).
    persist: Mutex<Option<PersistHook>>,
}

/// Shape of the write-through persistence hook installed by
/// [`PlanService::set_persist`].
pub type PersistHook = Arc<dyn Fn(&Arc<PreparedQuery>) + Send + Sync>;

impl std::fmt::Debug for PlanService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanService")
            .field("capacity", &self.capacity)
            .field("byte_budget", &self.byte_budget)
            .field("stats", &stats)
            .finish_non_exhaustive()
    }
}

impl PlanService {
    /// Creates a service over a catalog and optimizer configuration,
    /// caching at most `capacity` prepared queries (at least 1), with no
    /// byte bound.
    pub fn new(catalog: Catalog, config: OptimizerConfig, capacity: usize) -> Self {
        Self::bounded(catalog, config, capacity.max(1), None)
    }

    /// Creates a service bounded by resident *bytes* instead of entry
    /// count: entries are charged their [`PreparedQuery::size_bytes`]
    /// and the LRU tail is evicted once the total exceeds `max_bytes`.
    /// (One entry is always retained, even if alone it exceeds the
    /// budget.)
    pub fn with_byte_budget(catalog: Catalog, config: OptimizerConfig, max_bytes: usize) -> Self {
        Self::bounded(catalog, config, usize::MAX, Some(max_bytes))
    }

    /// Creates a service with both bounds: at most `capacity` entries
    /// *and* (when given) at most `max_bytes` resident.
    pub fn bounded(
        catalog: Catalog,
        config: OptimizerConfig,
        capacity: usize,
        max_bytes: Option<usize>,
    ) -> Self {
        PlanService {
            catalog,
            config,
            capacity: capacity.max(1),
            byte_budget: max_bytes,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                inflight: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
                evictions: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            persist: Mutex::new(None),
        }
    }

    /// Installs a write-through persistence hook (e.g. an
    /// `ArtifactStore` save). The hook runs on the flight *leader*
    /// after each successful first preparation — once per prepared
    /// artifact, never for cache hits or coalesced waiters — after the
    /// artifact is published to the cache and with no service lock
    /// held, so a slow disk stalls only the one request that paid for
    /// the optimization anyway. Errors are the hook's own business
    /// (log and carry on); serving never depends on persistence.
    pub fn set_persist(&self, hook: PersistHook) {
        *self.persist.lock().expect("persist hook poisoned") = Some(hook);
    }

    /// Seeds the cache with an externally prepared artifact (startup
    /// warming from an artifact store). Returns `true` if the artifact
    /// was admitted: it must have been prepared under this service's
    /// exact optimizer configuration (checked via the same normalized
    /// key `get_or_prepare` uses — a stale artifact from an old config
    /// is silently refused rather than served wrong), and a key that is
    /// already cached or in flight keeps its existing artifact.
    /// Admission charges the byte budget and may evict LRU entries,
    /// like any other insert.
    pub fn warm(&self, prepared: Arc<PreparedQuery>) -> bool {
        if cache_key(prepared.query(), prepared.config())
            != cache_key(prepared.query(), &self.config)
        {
            return false;
        }
        let key = cache_key(prepared.query(), &self.config);
        let mut state = self.state.lock().expect("service cache poisoned");
        if state.entries.contains_key(&key) || state.inflight.contains_key(&key) {
            return false;
        }
        let tick = state.next_tick();
        let size_bytes = prepared.size_bytes();
        state.entries.insert(
            key,
            CacheEntry {
                prepared,
                size_bytes,
                last_used: tick,
            },
        );
        state.resident_bytes += size_bytes;
        state.enforce_bounds(self.capacity, self.byte_budget);
        true
    }

    /// The service's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The optimizer configuration every cached artifact is prepared
    /// under.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Whether `query` is already cached, without touching the LRU
    /// order or the hit/miss counters.
    ///
    /// This is the admission-control probe for serving front-ends: a
    /// request whose query is cached is cheap to serve no matter how
    /// loaded the service is, while an uncached one will optimize —
    /// work a server may prefer to shed (with a typed overload reply)
    /// when the byte budget is already saturated or too many
    /// preparations are in flight (see [`ServiceStats::inflight`]).
    pub fn is_cached(&self, query: &QuerySpec) -> bool {
        let key = cache_key(query, &self.config);
        let state = self.state.lock().expect("service cache poisoned");
        state.entries.contains_key(&key)
    }

    /// Returns the prepared artifact for `query`, preparing and caching
    /// it on first request.
    ///
    /// The cache lock is *not* held while optimizing, so concurrent
    /// misses on different queries prepare in parallel. Concurrent
    /// requests for the *same* fresh query are single-flighted: exactly
    /// one thread optimizes, the rest block on its flight and adopt the
    /// shared artifact (or its error).
    pub fn get_or_prepare(&self, query: &QuerySpec) -> Result<Arc<PreparedQuery>, Error> {
        let key = cache_key(query, &self.config);
        loop {
            let flight = {
                let mut state = self.state.lock().expect("service cache poisoned");
                let tick = state.next_tick();
                if let Some(entry) = state.entries.get_mut(&key) {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&entry.prepared));
                }
                match state.inflight.get(&key) {
                    Some(flight) => Some(Arc::clone(flight)),
                    None => {
                        state.inflight.insert(
                            key.clone(),
                            Arc::new(Flight {
                                state: Mutex::new(FlightState::Pending),
                                done: Condvar::new(),
                            }),
                        );
                        None
                    }
                }
            };

            match flight {
                // Someone else is preparing this key: wait and adopt.
                Some(flight) => {
                    let mut fs = flight.state.lock().expect("flight poisoned");
                    loop {
                        match &*fs {
                            FlightState::Pending => {
                                fs = flight.done.wait(fs).expect("flight poisoned");
                            }
                            FlightState::Done(result) => {
                                self.coalesced.fetch_add(1, Ordering::Relaxed);
                                return result.clone();
                            }
                            // Leader unwound without a result: retry from
                            // the top (cache may or may not hold the key).
                            FlightState::Abandoned => break,
                        }
                    }
                }
                // This thread is the leader: prepare outside every lock.
                None => return self.lead_flight(&key, query),
            }
        }
    }

    /// Leader path of one flight: optimize, publish the result to both
    /// the cache and the flight, wake waiters. The guard marks the
    /// flight abandoned if `prepare` unwinds, so waiters never hang.
    fn lead_flight(&self, key: &str, query: &QuerySpec) -> Result<Arc<PreparedQuery>, Error> {
        struct FlightGuard<'a> {
            service: &'a PlanService,
            key: &'a str,
            result: Option<Result<Arc<PreparedQuery>, Error>>,
        }
        impl Drop for FlightGuard<'_> {
            fn drop(&mut self) {
                let mut state = self.service.state.lock().expect("service cache poisoned");
                if let Some(Ok(prepared)) = &self.result {
                    let tick = state.next_tick();
                    let size_bytes = prepared.size_bytes();
                    // A racing insert cannot exist: the flight owned the
                    // key from registration to here.
                    state.entries.insert(
                        self.key.to_string(),
                        CacheEntry {
                            prepared: Arc::clone(prepared),
                            size_bytes,
                            last_used: tick,
                        },
                    );
                    state.resident_bytes += size_bytes;
                    state.enforce_bounds(self.service.capacity, self.service.byte_budget);
                }
                let flight = state
                    .inflight
                    .remove(self.key)
                    .expect("leader owns the in-flight marker");
                drop(state);
                let mut fs = flight.state.lock().expect("flight poisoned");
                *fs = match self.result.take() {
                    Some(result) => FlightState::Done(result),
                    None => FlightState::Abandoned,
                };
                drop(fs);
                flight.done.notify_all();
            }
        }

        let mut guard = FlightGuard {
            service: self,
            key,
            result: None,
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = PreparedQuery::prepare(&self.catalog, query, &self.config).map(Arc::new);
        guard.result = Some(result.clone());
        drop(guard); // publish + wake before returning
        if let Ok(prepared) = &result {
            // Write-through persistence: after publication, outside
            // every cache lock, on the leader only.
            let hook = self.persist.lock().expect("persist hook poisoned").clone();
            if let Some(hook) = hook {
                hook(prepared);
            }
        }
        result
    }

    /// Current cache counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.state.lock().expect("service cache poisoned");
        ServiceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: state.evictions,
            entries: state.entries.len(),
            inflight: state.inflight.len(),
            resident_bytes: state.resident_bytes,
            capacity: self.capacity,
            byte_budget: self.byte_budget,
        }
    }

    /// Drops every cached artifact (outstanding [`Arc`] handles stay
    /// valid — the artifacts are immutable). In-flight preparations are
    /// unaffected.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("service cache poisoned");
        state.entries.clear();
        state.resident_bytes = 0;
    }
}

/// Normalized cache key: queries that differ only in the *order* their
/// join predicates or filters were written hash to the same prepared
/// artifact; the optimizer configuration participates because it changes
/// the memo (and therefore every count and rank).
///
/// Public because the artifact store fingerprints its entries with the
/// same normalization, so a store key and a cache key agree byte for
/// byte (see `plansample-artifact`).
pub fn cache_key(query: &QuerySpec, config: &OptimizerConfig) -> String {
    let mut edges: Vec<String> = query.join_edges.iter().map(|e| format!("{e:?}")).collect();
    edges.sort_unstable();
    let mut filters: Vec<String> = query.filters.iter().map(|f| format!("{f:?}")).collect();
    filters.sort_unstable();
    format!(
        "rels:{:?};edges:{:?};filters:{:?};agg:{:?};proj:{:?};cfg:{:?}",
        query.relations, edges, filters, query.aggregate, query.projection, config
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service(capacity: usize) -> PlanService {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        PlanService::new(catalog, OptimizerConfig::default(), capacity)
    }

    fn two_rel_query(catalog: &Catalog, a: &str, b: &str, ak: &str, bk: &str) -> QuerySpec {
        let mut qb = plansample_query::QueryBuilder::new(catalog);
        qb.rel(a, None).unwrap();
        qb.rel(b, None).unwrap();
        qb.join((a, ak), (b, bk)).unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn repeated_requests_share_one_artifact() {
        let s = service(4);
        let q = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        let before = plansample_optimizer::thread_optimizations_performed();
        let p1 = s.get_or_prepare(&q).unwrap();
        let p2 = s.get_or_prepare(&q).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed() - before,
            1
        );
        let stats = s.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.resident_bytes, p1.size_bytes());
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn normalization_ignores_predicate_order() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let build = |swap: bool| {
            let mut qb = plansample_query::QueryBuilder::new(&catalog);
            qb.rel("supplier", Some("s")).unwrap();
            qb.rel("nation", Some("n")).unwrap();
            qb.rel("region", Some("r")).unwrap();
            if swap {
                qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
                qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
            } else {
                qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
                qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
            }
            qb.build().unwrap()
        };
        let config = OptimizerConfig::default();
        // Join edges end up in different vector orders…
        assert_ne!(
            format!("{:?}", build(false).join_edges),
            format!("{:?}", build(true).join_edges)
        );
        // …but normalize to the same cache key.
        assert_eq!(
            cache_key(&build(false), &config),
            cache_key(&build(true), &config)
        );
        let (q_a, q_b) = (build(false), build(true));
        let s = PlanService::new(catalog, config, 4);
        s.get_or_prepare(&q_a).unwrap();
        s.get_or_prepare(&q_b).unwrap();
        assert_eq!(s.stats().entries, 1, "one artifact for both spellings");
    }

    #[test]
    fn config_participates_in_the_key() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let q = two_rel_query(&catalog, "nation", "region", "n_regionkey", "r_regionkey");
        assert_ne!(
            cache_key(&q, &OptimizerConfig::default()),
            cache_key(&q, &OptimizerConfig::with_cross_products())
        );
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let s = service(2);
        let q1 = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        let q2 = two_rel_query(
            s.catalog(),
            "supplier",
            "nation",
            "s_nationkey",
            "n_nationkey",
        );
        let q3 = two_rel_query(
            s.catalog(),
            "customer",
            "nation",
            "c_nationkey",
            "n_nationkey",
        );
        s.get_or_prepare(&q1).unwrap();
        s.get_or_prepare(&q2).unwrap();
        s.get_or_prepare(&q1).unwrap(); // refresh q1: q2 is now coldest
        s.get_or_prepare(&q3).unwrap(); // evicts q2
        let stats = s.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        s.get_or_prepare(&q1).unwrap();
        assert_eq!(s.stats().misses, 3, "q1 survived the eviction");
        s.get_or_prepare(&q2).unwrap();
        assert_eq!(s.stats().misses, 4, "q2 was evicted and re-prepares");
    }

    #[test]
    fn byte_budget_bounds_resident_bytes() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        // Size one artifact, then budget for roughly two.
        let probe = {
            let s = PlanService::new(catalog.clone(), OptimizerConfig::default(), 1);
            let q = two_rel_query(&catalog, "nation", "region", "n_regionkey", "r_regionkey");
            s.get_or_prepare(&q).unwrap().size_bytes()
        };
        let budget = probe * 5 / 2;
        let s = PlanService::with_byte_budget(catalog, OptimizerConfig::default(), budget);
        let queries = [
            ("nation", "region", "n_regionkey", "r_regionkey"),
            ("supplier", "nation", "s_nationkey", "n_nationkey"),
            ("customer", "nation", "c_nationkey", "n_nationkey"),
            ("orders", "customer", "o_custkey", "c_custkey"),
        ];
        for (a, b, ak, bk) in queries {
            let q = two_rel_query(s.catalog(), a, b, ak, bk);
            s.get_or_prepare(&q).unwrap();
            let stats = s.stats();
            assert!(
                stats.resident_bytes <= budget,
                "resident {} exceeds budget {budget}",
                stats.resident_bytes
            );
        }
        let stats = s.stats();
        assert_eq!(stats.byte_budget, Some(budget));
        assert!(stats.evictions >= 1, "the budget forced evictions");
        assert!(stats.entries >= 1 && stats.entries < queries.len());
        // Resident bytes stay consistent with the surviving entries.
        assert!(stats.resident_bytes > 0);
        s.clear();
        assert_eq!(s.stats().resident_bytes, 0);
    }

    #[test]
    fn oversized_artifact_is_admitted_alone() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        // Budget far below any artifact: every insert evicts the
        // previous entry but keeps itself.
        let s = PlanService::with_byte_budget(catalog, OptimizerConfig::default(), 1);
        let q1 = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        let q2 = two_rel_query(
            s.catalog(),
            "supplier",
            "nation",
            "s_nationkey",
            "n_nationkey",
        );
        s.get_or_prepare(&q1).unwrap();
        assert_eq!(s.stats().entries, 1, "single oversized entry is kept");
        s.get_or_prepare(&q2).unwrap();
        let stats = s.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn racing_first_preparations_single_flight() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let s = Arc::new(PlanService::new(catalog, OptimizerConfig::default(), 4));
        let q = Arc::new(two_rel_query(
            s.catalog(),
            "lineitem",
            "orders",
            "l_orderkey",
            "o_orderkey",
        ));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (s, q, barrier) = (Arc::clone(&s), Arc::clone(&q), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    let before = plansample_optimizer::thread_optimizations_performed();
                    barrier.wait();
                    let prepared = s.get_or_prepare(&q).unwrap();
                    let delta = plansample_optimizer::thread_optimizations_performed() - before;
                    (prepared, delta)
                })
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let total_optimizations: u64 = results.iter().map(|(_, d)| d).sum();
        assert_eq!(
            total_optimizations, 1,
            "racing threads must perform exactly one optimization in total"
        );
        assert!(
            Arc::ptr_eq(&results[0].0, &results[1].0),
            "both racers share one artifact"
        );
        let stats = s.stats();
        assert_eq!(stats.misses, 1, "one leader");
        assert_eq!(
            stats.hits + stats.coalesced,
            1,
            "the other racer adopted via the cache or the flight"
        );
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn failed_preparation_propagates_to_all_racers_and_caches_nothing() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let s = Arc::new(PlanService::new(catalog, OptimizerConfig::default(), 4));
        // Disconnected query: optimization fails.
        let q = {
            let mut qb = plansample_query::QueryBuilder::new(s.catalog());
            qb.rel("nation", None).unwrap();
            qb.rel("region", None).unwrap();
            Arc::new(qb.build().unwrap())
        };
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (s, q, barrier) = (Arc::clone(&s), Arc::clone(&q), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    s.get_or_prepare(&q)
                })
            })
            .collect();
        for w in workers {
            assert!(matches!(w.join().unwrap(), Err(Error::Opt(_))));
        }
        assert_eq!(s.stats().entries, 0, "failures are not cached");
        // A later retry attempts preparation again (and fails again).
        assert!(s.get_or_prepare(&q).is_err());
        assert!(s.stats().misses >= 2);
    }

    #[test]
    fn is_cached_probes_without_bumping_stats() {
        let s = service(4);
        let q = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        assert!(!s.is_cached(&q));
        assert_eq!(s.stats().inflight, 0);
        s.get_or_prepare(&q).unwrap();
        assert!(s.is_cached(&q));
        let stats = s.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "probe counted nothing");
        assert_eq!(stats.inflight, 0, "no preparation left in flight");
        // The probe respects normalization: a reordered spelling of the
        // same query reports cached too.
        s.clear();
        assert!(!s.is_cached(&q));
    }

    #[test]
    fn clear_empties_but_handles_stay_valid() {
        let s = service(4);
        let q = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        let p = s.get_or_prepare(&q).unwrap();
        s.clear();
        assert_eq!(s.stats().entries, 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample_batch(&mut rng, 5).len(), 5);
    }
}
