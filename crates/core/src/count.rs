//! §3.2 — Counting query plans.
//!
//! Bottom-up over the materialized links:
//!
//! ```text
//!   b_v(i) = Σ_j N(w_ij)            alternatives for child slot i
//!   B_v(k) = Π_{i≤k} b_v(i)         combined choices of the first k slots
//!   N(v)   = 1 if |v| = 0,  else B_v(|v|)
//!   N      = Σ_{v ∈ G_root} N(v)
//! ```
//!
//! Counts are exact [`Nat`]s: Table 1 of the paper reports spaces above
//! 4·10^12, and counts overflow any fixed-width integer as queries grow.
//! Each expression is visited once (memoized), so counting is linear in
//! the size of the MEMO — the paper's complexity claim, benchmarked in
//! `plansample-bench`.

use crate::Links;
use plansample_bignum::Nat;
use plansample_memo::{Memo, PhysId};

/// Exact plan counts for every expression plus the space total.
#[derive(Debug, Clone)]
pub struct Counts {
    per_expr: Vec<Vec<Nat>>,
    total: Nat,
}

impl Counts {
    /// Computes all counts. `links` must come from the same memo.
    pub fn compute(memo: &Memo, links: &Links) -> Counts {
        let mut per_expr: Vec<Vec<Option<Nat>>> = memo
            .groups()
            .map(|g| vec![None; g.physical.len()])
            .collect();
        for group in memo.groups() {
            for (id, _) in group.phys_iter() {
                count_rec(links, id, &mut per_expr);
            }
        }
        let per_expr: Vec<Vec<Nat>> = per_expr
            .into_iter()
            .map(|v| v.into_iter().map(|c| c.expect("all visited")).collect())
            .collect();
        let root = memo.root();
        let total = per_expr[root.0 as usize].iter().sum();
        Counts { per_expr, total }
    }

    /// `N(v)`: plans rooted in expression `id`.
    pub fn rooted(&self, id: PhysId) -> &Nat {
        &self.per_expr[id.group.0 as usize][id.index]
    }

    /// `N`: plans rooted in any root-group expression — the size of the
    /// complete search space.
    pub fn total(&self) -> &Nat {
        &self.total
    }

    /// `b_v(i)`: total alternatives for one child slot (the sum of the
    /// counts of its eligible children).
    pub fn slot_total(&self, alternatives: &[PhysId]) -> Nat {
        alternatives.iter().map(|&w| self.rooted(w)).sum()
    }
}

fn count_rec(links: &Links, id: PhysId, cache: &mut [Vec<Option<Nat>>]) -> Nat {
    if let Some(n) = &cache[id.group.0 as usize][id.index] {
        return n.clone();
    }
    let slots = links.children(id);
    let n = if slots.is_empty() {
        Nat::one()
    } else {
        let mut product = Nat::one();
        for alternatives in slots {
            let b: Nat = alternatives
                .iter()
                .map(|&w| count_rec(links, w, cache))
                .sum();
            product = product * b; // b = 0 ⇒ no completable plan here
        }
        product
    };
    cache[id.group.0 as usize][id.index] = Some(n.clone());
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_example_counts() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let counts = Counts::compute(&ex.memo, &links);

        // Leaves count 1.
        for id in [ex.table_scan_a, ex.idx_scan_a, ex.idx_scan_b, ex.idx_scan_c] {
            assert_eq!(counts.rooted(id), &Nat::one(), "{id}");
        }
        // Sort_A has exactly one sortable input (the TableScan).
        assert_eq!(counts.rooted(ex.sort_a).to_u64(), Some(1));
        // HashJoin(A,B) = 3 × 2, MergeJoin(A,B) = 2 × 1.
        assert_eq!(counts.rooted(ex.hash_join_ab).to_u64(), Some(6));
        assert_eq!(counts.rooted(ex.merge_join_ab).to_u64(), Some(2));
        // Roots: 2 × (6+2) = 16 each; space total 32.
        assert_eq!(counts.rooted(ex.root_c_ab).to_u64(), Some(16));
        assert_eq!(counts.rooted(ex.root_ab_c).to_u64(), Some(16));
        assert_eq!(counts.total().to_u64(), Some(32));
    }

    #[test]
    fn slot_totals_sum_alternative_counts() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let counts = Counts::compute(&ex.memo, &links);
        let slots = links.children(ex.root_c_ab);
        assert_eq!(counts.slot_total(&slots[0]).to_u64(), Some(2)); // group C
        assert_eq!(counts.slot_total(&slots[1]).to_u64(), Some(8)); // group AB
    }
}
