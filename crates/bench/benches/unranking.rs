//! Experiment E4 — §3.3: "Unranking is in O(m) … In terms of running
//! time, unranking takes only a small fraction of the time needed for
//! counting and is thus negligible."
//!
//! Benchmarks unranking (and ranking, its inverse) of fixed mid-space
//! ranks against pre-built plan spaces. Compare against the `counting`
//! bench to verify the "small fraction" claim.

use criterion::{criterion_group, criterion_main, Criterion};
use plansample_bench::prepare;
use plansample_bignum::Nat;

fn bench_unranking(c: &mut Criterion) {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let cases = [
        ("Q5_noCP", plansample_query::tpch::q5(&catalog), false),
        ("Q8_noCP", plansample_query::tpch::q8(&catalog), false),
        ("Q8_CP", plansample_query::tpch::q8(&catalog), true),
    ];

    let mut group = c.benchmark_group("unrank_plan");
    for (name, query, cp) in cases {
        let prepared = prepare(&catalog, "bench", query, cp);
        let space = prepared.space();
        // A mid-space rank touches non-trivial prefix sums at every level.
        let (rank, _) = space.total().div_rem(&Nat::from(2u64));
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(space.unrank(&rank).unwrap()))
        });
    }
    group.finish();

    // rank(unrank(r)) round trip on the largest space.
    let q8 = plansample_query::tpch::q8(&catalog);
    let prepared = prepare(&catalog, "Q8", q8, true);
    let space = prepared.space();
    let (rank, _) = space.total().div_rem(&Nat::from(3u64));
    let plan = space.unrank(&rank).unwrap();
    c.bench_function("rank_plan/Q8_CP", |b| {
        b.iter(|| std::hint::black_box(space.rank(&plan).unwrap()))
    });
}

criterion_group!(benches, bench_unranking);
criterion_main!(benches);
