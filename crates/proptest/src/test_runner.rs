//! Case generation and execution: [`ProptestConfig`], [`TestRunner`], and
//! the [`run`] loop the [`proptest!`](crate::proptest) macro expands into.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for one property test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching the crates.io proptest default.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; the runner draws another.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Source of randomness handed to strategies while generating one case.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Runner drawing from the given seed.
    pub fn new(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits for strategy implementations.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from its name.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Executes `case` until `config.cases` successes, a failure, or too many
/// rejections.
///
/// The seed is `fnv1a(name)` unless the `PROPTEST_SEED` environment
/// variable overrides it, so failures reproduce deterministically.
///
/// # Panics
/// Panics (failing the surrounding `#[test]`) on the first failing case or
/// when more than ten times `config.cases` rejections accumulate.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => fnv1a(name),
    };
    let mut runner = TestRunner::new(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = config.cases.saturating_mul(10).max(1000);
    while passed < config.cases {
        match case(&mut runner) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property test `{name}`: {rejected} cases rejected \
                     (last: {reason}); strategy too narrow"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property test `{name}` failed after {passed} passing cases \
                     (seed {seed}): {msg}"
                );
            }
        }
    }
}
