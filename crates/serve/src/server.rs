//! The serving front-end: a poll(2) event loop plus a worker pool.
//!
//! One thread owns every socket and runs the readiness loop: it
//! accepts, reads, frames, decodes, enforces the queue bound, and
//! writes replies. Decoded requests are executed on a small worker
//! pool (optimization and sampling must never block the loop); workers
//! push encoded reply frames onto a completion queue and wake the loop
//! through a socketpair. Connections are addressed by monotonically
//! increasing tokens that are never reused, so a completion for a
//! connection that died while its request was in flight is dropped on
//! the floor instead of corrupting a newer connection.
//!
//! Fault handling follows the wire module's recoverability split:
//! frames whose boundary is still trustworthy (unknown opcode,
//! malformed body) get a typed error reply and the connection keeps
//! serving; violations that poison the framing (oversized length
//! prefix, wrong protocol version) get a final typed reply with
//! request id 0 and the connection drains and closes. A partial frame
//! that sits incomplete longer than [`ServerConfig::frame_timeout`]
//! (however slowly it trickles) closes the connection — the
//! slow-loris defense.

use crate::conn::{Conn, ConnPhase};
use crate::reactor::{Interest, Poller};
use crate::state::{AdmissionConfig, ServerState};
use crate::wire::{self, ErrorCode, Request, Response, WireError, CONNECTION_REQUEST_ID};
use plansample_optimizer::OptimizerConfig;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// TPC-H service entry capacity.
    pub cache_entries: usize,
    /// TPC-H service byte budget (participates in admission control).
    pub byte_budget: Option<usize>,
    /// Queue/preparation shedding thresholds.
    pub admission: AdmissionConfig,
    /// Decoded-but-unanswered requests allowed per connection before
    /// the loop stops reading from it (pipelining bound).
    pub max_pipeline: usize,
    /// How long a partial frame may sit incomplete before the
    /// connection is closed (slow-loris defense).
    pub frame_timeout: Duration,
    /// Allow Cartesian products in served plan spaces.
    pub cross_products: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_entries: 64,
            byte_budget: None,
            admission: AdmissionConfig::default(),
            max_pipeline: 128,
            frame_timeout: Duration::from_secs(10),
            cross_products: false,
        }
    }
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    waker: Mutex<UnixStream>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (counters, services).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Signals shutdown and joins every thread.
    pub fn stop(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server exits (external shutdown only).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Ok(mut w) = self.waker.lock() {
            let _ = w.write(&[1]);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A request in flight to the worker pool.
struct Job {
    token: u64,
    request_id: u64,
    request: Request,
}

/// An encoded reply on its way back to the loop.
struct Completion {
    token: u64,
    payload: Vec<u8>,
}

/// Binds the listener and spawns the event loop + workers.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let optimizer = if config.cross_products {
        OptimizerConfig::with_cross_products()
    } else {
        OptimizerConfig::default()
    };
    let state = Arc::new(ServerState::new(
        optimizer,
        config.cache_entries,
        config.byte_budget,
        config.admission,
    ));

    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    // The write side must never block a worker: a full wake buffer
    // already guarantees the loop will wake, so WouldBlock is ignored.
    // (O_NONBLOCK lives on the shared open file description, so the
    // per-worker clones inherit it.)
    wake_tx.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

    let mut threads = Vec::new();
    for i in 0..config.workers.max(1) {
        let jobs_rx = Arc::clone(&jobs_rx);
        let completions = Arc::clone(&completions);
        let state = Arc::clone(&state);
        let mut waker = wake_tx.try_clone()?;
        threads.push(
            std::thread::Builder::new()
                .name(format!("plansample-serve-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only while dequeuing.
                    let job = match jobs_rx.lock().expect("job queue poisoned").recv() {
                        Ok(job) => job,
                        Err(_) => return, // loop exited, channel closed
                    };
                    let response = state.handle(&job.request);
                    let payload = response.encode(job.request_id);
                    completions
                        .lock()
                        .expect("completion queue poisoned")
                        .push(Completion {
                            token: job.token,
                            payload,
                        });
                    let _ = waker.write(&[1]);
                })?,
        );
    }

    let loop_state = Arc::clone(&state);
    let loop_shutdown = Arc::clone(&shutdown);
    let loop_completions = Arc::clone(&completions);
    let frame_timeout = config.frame_timeout;
    let max_pipeline = config.max_pipeline.max(1);
    threads.insert(
        0,
        std::thread::Builder::new()
            .name("plansample-serve-loop".into())
            .spawn(move || {
                EventLoop {
                    listener,
                    wake_rx,
                    conns: HashMap::new(),
                    next_token: 2,
                    poller: Poller::new(),
                    state: loop_state,
                    jobs_tx,
                    completions: loop_completions,
                    inflight_total: 0,
                    shutdown: loop_shutdown,
                    frame_timeout,
                    max_pipeline,
                }
                .run();
            })?,
    );

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        waker: Mutex::new(wake_tx),
        threads,
    })
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;

/// Backoff after a failed `poll(2)` call, and how many consecutive
/// failures are tolerated before the loop gives up: a persistent error
/// (e.g. EINVAL from breaching the fd limit) must not spin the loop at
/// 100% CPU, and if it never clears the server shuts down rather than
/// hang unresponsively.
const POLL_ERROR_BACKOFF: Duration = Duration::from_millis(10);
const MAX_POLL_ERRORS: u32 = 100;

struct EventLoop {
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    poller: Poller,
    state: Arc<ServerState>,
    jobs_tx: mpsc::Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    /// Requests queued or executing across all connections (the queue
    /// bound admission control enforces).
    inflight_total: usize,
    shutdown: Arc<AtomicBool>,
    frame_timeout: Duration,
    max_pipeline: usize,
}

impl EventLoop {
    fn run(mut self) {
        let mut poll_errors: u32 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            self.drain_completions();
            self.reap();

            self.poller.clear();
            self.poller
                .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ);
            self.poller
                .register(self.wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ);
            for (&token, conn) in &self.conns {
                self.poller.register(
                    conn.stream().as_raw_fd(),
                    token,
                    Interest {
                        readable: conn.wants_read(self.max_pipeline),
                        writable: conn.wants_write(),
                    },
                );
            }

            let timeout = self
                .nearest_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()));
            let events = match self.poller.wait(timeout) {
                Ok(events) => {
                    poll_errors = 0;
                    events
                }
                Err(e) => {
                    poll_errors += 1;
                    if poll_errors >= MAX_POLL_ERRORS {
                        eprintln!(
                            "plansample-serve: poll(2) failed {poll_errors} times in a row \
                             ({e}); shutting down"
                        );
                        self.shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(POLL_ERROR_BACKOFF);
                    continue;
                }
            };

            let now = Instant::now();
            for event in events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => {
                        if event.error {
                            self.close(token);
                            continue;
                        }
                        if event.writable {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                if !conn.flush() {
                                    self.close(token);
                                    continue;
                                }
                            }
                        }
                        if event.readable {
                            self.read_ready(token, now);
                        }
                    }
                }
            }
            self.enforce_frame_deadlines(now);
        }
        // Dropping the sender closes the job channel; workers exit.
    }

    /// Moves finished replies into their connections' write buffers.
    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut queue = self.completions.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        let now = Instant::now();
        for completion in done {
            self.inflight_total -= 1;
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                // The connection died with the request in flight; the
                // reply is dropped, never delivered to a reused token.
                continue;
            };
            conn.inflight -= 1;
            conn.queue_reply(&completion.payload);
            // Opportunistic flush: most replies fit the socket
            // buffer, so this saves a poll round trip per request.
            if !conn.flush() {
                self.close(completion.token);
                continue;
            }
            // The freed pipeline slot may expose complete frames that
            // are already buffered: a client that sent its whole burst
            // (or half-closed) produces no further POLLIN, so this is
            // the only place those frames can re-enter the parse loop.
            self.parse_frames(completion.token, now);
        }
    }

    /// Closes connections that finished draining.
    fn reap(&mut self) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.phase == ConnPhase::Closed || c.drained())
            .map(|(&t, _)| t)
            .collect();
        for token in done {
            self.close(token);
        }
    }

    fn nearest_deadline(&self) -> Option<Instant> {
        self.conns
            .values()
            .filter_map(|c| c.frame_deadline())
            .map(|started| started + self.frame_timeout)
            .min()
    }

    fn enforce_frame_deadlines(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.frame_deadline().is_some_and(|started| {
                    now.saturating_duration_since(started) >= self.frame_timeout
                })
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            // Slow-loris: the partial frame never completed in time.
            self.close(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let Ok(conn) = Conn::new(stream) else {
                        continue;
                    };
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(token, conn);
                    self.state.connections_total.fetch_add(1, Ordering::Relaxed);
                    self.state.connections_open.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    fn read_ready(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let alive = conn.fill();
        if !alive {
            // EOF (or read error): no more input will arrive, but every
            // request already buffered is still served and flushed
            // before the connection closes (see `Conn::drained`).
            conn.eof = true;
        }
        self.parse_frames(token, now);
    }

    /// Decodes every complete frame buffered on `token`, enforcing the
    /// pipeline and queue bounds and the wire error policy.
    fn parse_frames(&mut self, token: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.phase != ConnPhase::Open || conn.inflight >= self.max_pipeline {
                return;
            }
            let payload = match conn.next_frame(now) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(e) => {
                    // Framing poisoned: typed reply, then drain.
                    self.state.wire_errors.fetch_add(1, Ordering::Relaxed);
                    let reply = wire_error_reply(&e);
                    conn.queue_reply(&reply.encode(CONNECTION_REQUEST_ID));
                    conn.phase = ConnPhase::Draining;
                    return;
                }
            };
            self.handle_payload(token, &payload);
        }
    }

    fn handle_payload(&mut self, token: u64, payload: &[u8]) {
        let header = wire::decode_header(payload);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let (_, request_id) = match header {
            Ok(pair) => pair,
            Err(e) => {
                self.state.wire_errors.fetch_add(1, Ordering::Relaxed);
                let recoverable = e.is_recoverable();
                conn.queue_reply(&wire_error_reply(&e).encode(CONNECTION_REQUEST_ID));
                if !recoverable {
                    conn.phase = ConnPhase::Draining;
                }
                return;
            }
        };
        match Request::decode(payload) {
            Ok((request_id, request)) => {
                if self.inflight_total >= self.state.max_inflight() {
                    // Queue bound: shed instead of queueing unboundedly.
                    self.state.shed_queue.fetch_add(1, Ordering::Relaxed);
                    let reply = Response::error(
                        ErrorCode::Overloaded,
                        format!("request queue at its {} bound", self.state.max_inflight()),
                    );
                    conn.queue_reply(&reply.encode(request_id));
                    return;
                }
                conn.inflight += 1;
                self.inflight_total += 1;
                // The receiver outlives the loop (workers hold it);
                // send cannot fail until shutdown, where replies are
                // moot anyway.
                let _ = self.jobs_tx.send(Job {
                    token,
                    request_id,
                    request,
                });
            }
            Err(e) => {
                // The frame was well-delimited but the body was not a
                // request: typed reply, connection keeps serving.
                self.state.wire_errors.fetch_add(1, Ordering::Relaxed);
                conn.queue_reply(&wire_error_reply(&e).encode(request_id));
            }
        }
    }

    fn close(&mut self, token: u64) {
        if self.conns.remove(&token).is_some() {
            self.state.connections_open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The typed reply for a frame that failed to decode.
fn wire_error_reply(e: &WireError) -> Response {
    let code = match e {
        WireError::Oversized(_) => ErrorCode::Oversized,
        WireError::BadVersion(_) => ErrorCode::BadVersion,
        WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        _ => ErrorCode::BadRequest,
    };
    Response::error(code, e.to_string())
}
