//! Workspace-internal stand-in for the subset of the crates.io `proptest`
//! API this repository uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the property-testing surface the test suites call: the [`proptest!`]
//! macro, the [`Strategy`] trait with [`Strategy::prop_map`], [`any`] for
//! primitive types, integer-range strategies, [`collection::vec`], the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from crates.io `proptest`, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via the
//!   assertion message) and the deterministic seed, but is not minimized.
//! * **Deterministic seeding.** Each test derives its seed from the test
//!   function's name (override with the `PROPTEST_SEED` environment
//!   variable), so CI failures reproduce locally.
//! * Only the strategies the workspace exercises exist.

#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` (the attribute is written explicitly, as with crates.io
/// proptest) that runs `body` for [`ProptestConfig::cases`] generated
/// inputs. An optional leading `#![proptest_config(expr)]` sets the
/// configuration for every test in the block.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;) => {};
    (@impl $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |__runner| {
                $(let $arg = $crate::Strategy::generate(&($strat), __runner);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result
            });
        }
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ::core::default::Default::default(); $($rest)*);
    };
}

/// Like `assert!`, but inside [`proptest!`]: reports the failing condition
/// together with the generating seed instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Discards the current case (it counts as neither pass nor failure) when
/// the condition does not hold; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}
