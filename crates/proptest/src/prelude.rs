//! The glob-import surface: `use proptest::prelude::*;` brings in
//! everything the [`proptest!`](crate::proptest) macro and its bodies need.

pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
