//! §3.1 — Preparatory steps: materializing the links between operators
//! and their possible children.
//!
//! "In order to facilitate later operations we extract all physical
//! operators and materialize the links between operators and their
//! possible children." For every physical expression and every child
//! slot, [`Links`] records the list of compatible child expressions
//! (property-filtered through [`plansample_memo::eligible_children`]).
//! The resulting structure describes all possible execution plans rooted
//! in each operator and is what counting and unranking traverse.
//!
//! # Flat layout
//!
//! Expressions are addressed by [`DenseId`] (a memo-wide contiguous
//! `u32`, see [`DenseIdMap`]) and the links are stored CSR-style in four
//! flat buffers:
//!
//! ```text
//!   pool:        [DenseId]   all alternative lists, concatenated
//!   list_bounds: [u32]       list l = pool[list_bounds[l] .. list_bounds[l+1]]
//!   slot_lists:  [ListId]    per-expression slot → list, concatenated
//!   slot_bounds: [u32]       expr d's slots = slot_lists[slot_bounds[d] .. slot_bounds[d+1]]
//! ```
//!
//! Alternative lists are *interned*: two slots demanding the same
//! `(group, requirement)` — or even different requirements that filter
//! down to the same child set — share one [`ListId`]. Sibling joins over
//! the same input groups share most of their lists, which collapses both
//! the memory footprint and the number of `eligible_children` property
//! scans from "once per slot" to "once per distinct slot". The per-list
//! slot totals `b_v(i)` of §3.2 are likewise computed once per distinct
//! list (see [`crate::Counts`]).
//!
//! Building the links also computes a topological order of the plan
//! graph (children before parents) in the same pass that verifies
//! acyclicity — a prerequisite for the bottom-up count. Memos produced
//! by the optimizer are acyclic by construction (joins reference
//! strictly smaller relation sets; enforcers never feed enforcers), but
//! hand-built memos are checked defensively.

use crate::SpaceError;
use plansample_memo::{eligible_children, ChildSlot, DenseId, DenseIdMap, Memo, PhysId};
use plansample_query::QuerySpec;
use std::collections::HashMap;

/// Identifies one interned child-alternative list within a [`Links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListId(u32);

impl ListId {
    /// The id as a usize array index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Constructs from a raw index (crate-internal: ids are only issued
    /// by [`Links::build`]'s interner).
    #[inline]
    pub(crate) fn new(raw: u32) -> Self {
        ListId(raw)
    }
}

/// The flat CSR buffers of a [`Links`] as raw `u32` tables — the
/// serialization view a plan-space artifact stores and reloads
/// byte-for-byte (see `plansample-artifact`). Produced by
/// [`Links::to_parts`], consumed (and validated) by
/// [`Links::from_parts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinksParts {
    /// All interned alternative lists, concatenated ([`DenseId`] raws).
    pub pool: Vec<u32>,
    /// List `l` = `pool[list_bounds[l] .. list_bounds[l+1]]`.
    pub list_bounds: Vec<u32>,
    /// Per-expression slot → interned list ([`ListId`] raws).
    pub slot_lists: Vec<u32>,
    /// Expr `d`'s slots = `slot_lists[slot_bounds[d] .. slot_bounds[d+1]]`.
    pub slot_bounds: Vec<u32>,
    /// Every expression, children before parents ([`DenseId`] raws).
    pub topo: Vec<u32>,
    /// The root group's interned alternative list.
    pub root_list: u32,
}

/// Materialized parent→child links for every physical expression, in the
/// flat CSR layout described in the module docs above.
#[derive(Debug, Clone)]
pub struct Links {
    ids: DenseIdMap,
    /// All interned alternative lists, concatenated.
    pool: Vec<DenseId>,
    /// `list_bounds[l]..list_bounds[l+1]` bounds list `l` in `pool`.
    list_bounds: Vec<u32>,
    /// Per-expression slot → interned list, concatenated in slot order.
    slot_lists: Vec<ListId>,
    /// `slot_bounds[d]..slot_bounds[d+1]` bounds expr `d` in `slot_lists`.
    slot_bounds: Vec<u32>,
    /// Every expression, children before parents (also proves acyclicity).
    topo: Vec<DenseId>,
    /// The root group's expressions as an interned list — the alternative
    /// list the whole-space operations start from.
    root_list: ListId,
}

impl Links {
    /// Smallest number of distinct slots worth a worker thread: each
    /// slot costs one `eligible_children` scan over its group.
    const PAR_MIN_SLOTS: usize = 16;

    /// Materializes all links, interning duplicate alternative lists, and
    /// computes the topological order (failing on cyclic hand-built
    /// memos).
    ///
    /// The build is parallel in its hot phase and *deterministic*: the
    /// output is bit-identical at every thread count (see
    /// `tests/build_determinism.rs`). Three passes:
    ///
    /// 1. **Gather** (sequential, cheap): walk every expression's child
    ///    slots, assigning each *distinct* slot an index in
    ///    first-encounter order — no property scans yet.
    /// 2. **Scan** (parallel): one `eligible_children` property scan per
    ///    distinct slot, fanned out over the `threadpool` workers. The
    ///    scans are independent and their outputs are a pure function of
    ///    the slot, so the fan-out cannot perturb the result.
    /// 3. **Intern** (sequential, cheap): content-intern the per-slot
    ///    child lists *in distinct-slot order* — the same first-encounter
    ///    order the sequential build used, which pins pool layout and
    ///    [`ListId`] assignment.
    pub fn build(memo: &Memo, query: &QuerySpec) -> Result<Links, SpaceError> {
        let ids = DenseIdMap::build(memo);
        let n = ids.len();

        // Pass 1: gather slots; distinct slots in first-encounter order.
        let mut slot_of: Vec<u32> = Vec::new();
        let mut slot_bounds: Vec<u32> = Vec::with_capacity(n + 1);
        slot_bounds.push(0);
        let mut by_slot: HashMap<ChildSlot, u32> = HashMap::new();
        let mut distinct: Vec<ChildSlot> = Vec::new();
        for group in memo.groups() {
            for (id, expr) in group.phys_iter() {
                for slot in expr.child_slots(id.group) {
                    let next = distinct.len() as u32;
                    let idx = match by_slot.entry(slot) {
                        std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            distinct.push(v.key().clone());
                            v.insert(next);
                            next
                        }
                    };
                    slot_of.push(idx);
                }
                slot_bounds.push(slot_of.len() as u32);
            }
        }

        // Pass 2: the property scans — the expensive part — in parallel.
        let kid_lists: Vec<Vec<DenseId>> =
            threadpool::parallel_map(distinct.len(), Self::PAR_MIN_SLOTS, |i| {
                eligible_children(memo, query, &distinct[i])
                    .iter()
                    .map(|&k| ids.dense(k))
                    .collect()
            });

        // Pass 3: content-intern (collapses distinct slots that filter to
        // the same alternatives) and resolve per-slot list ids.
        let mut pool: Vec<DenseId> = Vec::new();
        let mut list_bounds: Vec<u32> = vec![0];
        let mut by_content: HashMap<Vec<DenseId>, ListId> = HashMap::new();
        let mut intern =
            |kids: Vec<DenseId>, pool: &mut Vec<DenseId>, bounds: &mut Vec<u32>| match by_content
                .get(&kids)
            {
                Some(&l) => l,
                None => {
                    pool.extend_from_slice(&kids);
                    bounds.push(pool.len() as u32);
                    let l = ListId(bounds.len() as u32 - 2);
                    by_content.insert(kids, l);
                    l
                }
            };
        let mut list_of_slot: Vec<ListId> = Vec::with_capacity(distinct.len());
        for kids in kid_lists {
            list_of_slot.push(intern(kids, &mut pool, &mut list_bounds));
        }
        let mut slot_lists: Vec<ListId> =
            slot_of.iter().map(|&i| list_of_slot[i as usize]).collect();

        let root_members: Vec<DenseId> = ids.group_range(memo.root()).map(DenseId).collect();
        let root_list = intern(root_members, &mut pool, &mut list_bounds);

        // The links back a long-lived, byte-budgeted artifact: drop the
        // growth slack the pushes above left in the flat buffers.
        pool.shrink_to_fit();
        list_bounds.shrink_to_fit();
        slot_lists.shrink_to_fit();

        let mut links = Links {
            ids,
            pool,
            list_bounds,
            slot_lists,
            slot_bounds,
            topo: Vec::new(),
            root_list,
        };
        links.topo = links.topo_sort()?;
        Ok(links)
    }

    /// Copies the flat CSR buffers out as raw `u32` tables for
    /// serialization. The dense-id table is *not* part of the view: it
    /// is a pure function of the memo and is rebuilt by
    /// [`from_parts`](Self::from_parts).
    pub fn to_parts(&self) -> LinksParts {
        LinksParts {
            pool: self.pool.iter().map(|d| d.0).collect(),
            list_bounds: self.list_bounds.clone(),
            slot_lists: self.slot_lists.iter().map(|l| l.0).collect(),
            slot_bounds: self.slot_bounds.clone(),
            topo: self.topo.iter().map(|d| d.0).collect(),
            root_list: self.root_list.0,
        }
    }

    /// Reassembles links from raw parts (the artifact load path),
    /// validating every structural invariant the accessors rely on in
    /// one O(n) pass — bounds tables monotonic and covering, every
    /// index in range, the topo order a permutation — so corrupt or
    /// adversarial bytes surface as [`SpaceError::MalformedParts`]
    /// instead of a panic. It does *not* re-verify that the topo order
    /// is children-before-parents or that list contents match an
    /// `eligible_children` scan; the artifact layer's whole-file
    /// checksum owns byte integrity, and this constructor owns memory
    /// safety of the indices.
    pub fn from_parts(memo: &Memo, parts: LinksParts) -> Result<Links, SpaceError> {
        let malformed = |reason: &str| SpaceError::MalformedParts {
            reason: reason.to_string(),
        };
        let ids = DenseIdMap::build(memo);
        let n = ids.len();
        let LinksParts {
            pool,
            list_bounds,
            slot_lists,
            slot_bounds,
            topo,
            root_list,
        } = parts;

        // Bounds tables: non-empty, start at 0, monotonic, end at the
        // length of the buffer they index.
        let check_bounds = |bounds: &[u32], covered: usize, what: &str| {
            if bounds.first() != Some(&0) {
                return Err(SpaceError::MalformedParts {
                    reason: format!("{what} bounds must start at 0"),
                });
            }
            if bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err(SpaceError::MalformedParts {
                    reason: format!("{what} bounds must be monotonic"),
                });
            }
            if *bounds.last().unwrap() as usize != covered {
                return Err(SpaceError::MalformedParts {
                    reason: format!("{what} bounds must end at the buffer length"),
                });
            }
            Ok(())
        };
        check_bounds(&list_bounds, pool.len(), "list")?;
        let num_lists = list_bounds.len() - 1;
        if slot_bounds.len() != n + 1 {
            return Err(malformed("slot bounds must have one entry per expression"));
        }
        check_bounds(&slot_bounds, slot_lists.len(), "slot")?;

        // Index ranges.
        if pool.iter().any(|&d| d as usize >= n) {
            return Err(malformed("pool entry out of range"));
        }
        if slot_lists.iter().any(|&l| l as usize >= num_lists) {
            return Err(malformed("slot list id out of range"));
        }
        if (root_list as usize) >= num_lists {
            return Err(malformed("root list id out of range"));
        }

        // The topo order must be a permutation of the expressions.
        if topo.len() != n {
            return Err(malformed("topo order must cover every expression"));
        }
        let mut seen = vec![false; n];
        for &d in &topo {
            if d as usize >= n || std::mem::replace(&mut seen[d as usize], true) {
                return Err(malformed("topo order must be a permutation"));
            }
        }

        Ok(Links {
            ids,
            pool: pool.into_iter().map(DenseId).collect(),
            list_bounds,
            slot_lists: slot_lists.into_iter().map(ListId).collect(),
            slot_bounds,
            topo: topo.into_iter().map(DenseId).collect(),
            root_list: ListId(root_list),
        })
    }

    /// The dense-id table shared by everything built on these links.
    pub fn ids(&self) -> &DenseIdMap {
        &self.ids
    }

    /// Number of physical expressions covered.
    pub fn num_exprs(&self) -> usize {
        self.ids.len()
    }

    /// Number of distinct (interned) alternative lists.
    pub fn num_lists(&self) -> usize {
        self.list_bounds.len() - 1
    }

    /// Total entries across the interned lists (the arena size; without
    /// interning this would be the full link count).
    pub fn num_pooled_links(&self) -> usize {
        self.pool.len()
    }

    /// The alternatives of one interned list.
    #[inline]
    pub fn list(&self, l: ListId) -> &[DenseId] {
        &self.pool[self.list_bounds[l.idx()] as usize..self.list_bounds[l.idx() + 1] as usize]
    }

    /// The range of one interned list within the concatenated pool —
    /// the coordinate system the sidecar count mirrors share (see
    /// [`crate::Counts`]): a pool-aligned buffer indexed by this range
    /// yields the per-alternative values of list `l` as one contiguous
    /// slice.
    #[inline]
    pub(crate) fn list_range(&self, l: ListId) -> std::ops::Range<usize> {
        self.list_bounds[l.idx()] as usize..self.list_bounds[l.idx() + 1] as usize
    }

    /// The whole concatenated list pool (every interned list's members,
    /// back to back) — what the sidecar builders mirror into flat count
    /// buffers.
    #[inline]
    pub(crate) fn pool_exprs(&self) -> &[DenseId] {
        &self.pool
    }

    /// The interned list of each child slot of `d`, in slot order.
    #[inline]
    pub fn slot_lists(&self, d: DenseId) -> &[ListId] {
        &self.slot_lists[self.slot_bounds[d.idx()] as usize..self.slot_bounds[d.idx() + 1] as usize]
    }

    /// Number of child slots of `d` (the paper's `|v|`).
    #[inline]
    pub fn arity(&self, d: DenseId) -> usize {
        (self.slot_bounds[d.idx() + 1] - self.slot_bounds[d.idx()]) as usize
    }

    /// Number of child slots of an expression, by nominal id.
    ///
    /// # Panics
    /// Panics when `id` is not part of the linked memo.
    pub fn arity_of(&self, id: PhysId) -> usize {
        self.arity(self.ids.dense(id))
    }

    /// The list every whole-space operation starts from: the root group's
    /// expressions.
    pub fn root_list(&self) -> ListId {
        self.root_list
    }

    /// Every expression in a children-before-parents order. Computed once
    /// at build time; the iterative count and the analytical passes walk
    /// it instead of recursing.
    pub fn topo(&self) -> &[DenseId] {
        &self.topo
    }

    /// Iterates every expression id covered by these links, in dense
    /// order. (Self-contained: the links carry their own id table.)
    pub fn all_ids(&self) -> impl Iterator<Item = PhysId> + '_ {
        self.ids.iter().map(|(_, id)| id)
    }

    /// The alternatives for each child slot of `id`, materialized as
    /// nominal ids — the nested view tests and diagnostics read; hot
    /// paths use [`slot_lists`](Self::slot_lists)/[`list`](Self::list)
    /// directly.
    pub fn children_of(&self, id: PhysId) -> Vec<Vec<PhysId>> {
        self.slot_lists(self.ids.dense(id))
            .iter()
            .map(|&l| self.list(l).iter().map(|&d| self.ids.phys(d)).collect())
            .collect()
    }

    /// Bytes of memory held by the links: the id table plus the four flat
    /// buffers, capacity-accurate.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<DenseIdMap>()
            + self.ids.size_bytes()
            + self.pool.capacity() * std::mem::size_of::<DenseId>()
            + self.list_bounds.capacity() * std::mem::size_of::<u32>()
            + self.slot_lists.capacity() * std::mem::size_of::<ListId>()
            + self.slot_bounds.capacity() * std::mem::size_of::<u32>()
            + self.topo.capacity() * std::mem::size_of::<DenseId>()
    }

    /// Smallest per-round frontier worth fanning out: each frontier
    /// expression costs a few atomic decrements.
    const PAR_MIN_TOPO: usize = 64;

    /// Level-synchronous Kahn elimination producing a
    /// children-before-parents order; leftovers after the frontier runs
    /// dry are a cycle.
    ///
    /// The walk runs over the *condensed bipartite graph* — an expression
    /// points at its interned lists, a list at its member expressions —
    /// so the edge count is `slots + pooled entries`, not the full
    /// (interning-free) link count the naive link graph would force it
    /// to visit. On Q8+CP that is ~80k edges instead of several million.
    ///
    /// Unlike the DFS it replaced, each round's frontier is processed in
    /// parallel: a frontier expression retires its membership edges with
    /// an atomic `fetch_sub`, the worker that takes a counter to zero
    /// (exactly one, by atomicity) collects the newly-ready node, and the
    /// round's collected successors are merged and **sorted by dense id**
    /// before becoming the next frontier. Sorting is what keeps the
    /// output bit-identical at every thread count: the set of nodes per
    /// level is a property of the graph, and the order within a level is
    /// pinned by the sort rather than by scheduling. (The order differs
    /// from the old DFS post-order — only the children-before-parents
    /// property is contractual, and `from_parts` validates topo only as
    /// a permutation, so persisted artifacts remain loadable.)
    fn topo_sort(&self) -> Result<Vec<DenseId>, SpaceError> {
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = self.num_exprs();
        let num_lists = self.num_lists();

        // Reverse CSRs by counting sort. Forward edges are "expr needs
        // its slot lists, list needs its members"; elimination flows the
        // other way, so we need membership (expr → lists it appears in)
        // and consumption (list → exprs with a slot on it).
        let mut member_bounds = vec![0u32; n + 1];
        for d in &self.pool {
            member_bounds[d.idx() + 1] += 1;
        }
        for i in 0..n {
            member_bounds[i + 1] += member_bounds[i];
        }
        let mut member_lists = vec![0u32; self.pool.len()];
        let mut cursor: Vec<u32> = member_bounds[..n].to_vec();
        for l in 0..num_lists {
            for p in self.list_bounds[l] as usize..self.list_bounds[l + 1] as usize {
                let d = self.pool[p].idx();
                member_lists[cursor[d] as usize] = l as u32;
                cursor[d] += 1;
            }
        }
        let mut consumer_bounds = vec![0u32; num_lists + 1];
        for l in &self.slot_lists {
            consumer_bounds[l.idx() + 1] += 1;
        }
        for i in 0..num_lists {
            consumer_bounds[i + 1] += consumer_bounds[i];
        }
        let mut consumers = vec![0u32; self.slot_lists.len()];
        let mut cursor: Vec<u32> = consumer_bounds[..num_lists].to_vec();
        for e in 0..n {
            for s in self.slot_bounds[e] as usize..self.slot_bounds[e + 1] as usize {
                let l = self.slot_lists[s].idx();
                consumers[cursor[l] as usize] = e as u32;
                cursor[l] += 1;
            }
        }

        // Outstanding dependencies. An expression is ready when all its
        // slot lists are finished; a list when all its members retired.
        let pending_expr: Vec<AtomicU32> = (0..n)
            .map(|e| AtomicU32::new(self.slot_bounds[e + 1] - self.slot_bounds[e]))
            .collect();
        let pending_list: Vec<AtomicU32> = (0..num_lists)
            .map(|l| AtomicU32::new(self.list_bounds[l + 1] - self.list_bounds[l]))
            .collect();

        // Round 0: leaves are born ready; empty lists (a slot that
        // filtered to no alternatives) finish immediately and may ready
        // their consumers before any expression retires.
        let mut frontier: Vec<u32> = (0..n as u32)
            .filter(|&e| pending_expr[e as usize].load(Ordering::Relaxed) == 0)
            .collect();
        for l in 0..num_lists {
            if pending_list[l].load(Ordering::Relaxed) == 0 {
                for &e in &consumers[consumer_bounds[l] as usize..consumer_bounds[l + 1] as usize] {
                    if pending_expr[e as usize].fetch_sub(1, Ordering::Relaxed) == 1 {
                        frontier.push(e);
                    }
                }
            }
        }
        frontier.sort_unstable();

        let mut topo: Vec<DenseId> = Vec::with_capacity(n);
        while !frontier.is_empty() {
            topo.extend(frontier.iter().map(|&e| DenseId(e)));
            let ready_per_expr: Vec<Vec<u32>> =
                threadpool::parallel_map(frontier.len(), Self::PAR_MIN_TOPO, |i| {
                    let e = frontier[i] as usize;
                    let mut ready = Vec::new();
                    for &l in
                        &member_lists[member_bounds[e] as usize..member_bounds[e + 1] as usize]
                    {
                        if pending_list[l as usize].fetch_sub(1, Ordering::AcqRel) != 1 {
                            continue;
                        }
                        let c = consumer_bounds[l as usize] as usize
                            ..consumer_bounds[l as usize + 1] as usize;
                        for &p in &consumers[c] {
                            if pending_expr[p as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                ready.push(p);
                            }
                        }
                    }
                    ready
                });
            let mut next: Vec<u32> = ready_per_expr.into_iter().flatten().collect();
            next.sort_unstable();
            frontier = next;
        }

        if topo.len() == n {
            return Ok(topo);
        }
        // Leftovers: walk unfinished dependencies until a node repeats —
        // the walk can only converge into a cycle, and the first repeat
        // is on it. Every unprocessed expression has an unfinished slot
        // list, and every unfinished list an unprocessed member.
        let unprocessed = |e: &AtomicU32| e.load(Ordering::Relaxed) > 0;
        let mut seen = vec![false; n];
        let mut e = (0..n)
            .find(|&e| unprocessed(&pending_expr[e]))
            .expect("topo shortfall implies an unprocessed expression");
        loop {
            if std::mem::replace(&mut seen[e], true) {
                return Err(SpaceError::CyclicMemo {
                    at: self.ids.phys(DenseId(e as u32)),
                });
            }
            let l = self
                .slot_lists(DenseId(e as u32))
                .iter()
                .find(|l| pending_list[l.idx()].load(Ordering::Relaxed) > 0)
                .expect("an unprocessed expression has an unfinished list");
            e = self
                .list(*l)
                .iter()
                .find(|d| unprocessed(&pending_expr[d.idx()]))
                .expect("an unfinished list has an unprocessed member")
                .idx();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use plansample_memo::{GroupKey, Memo, PhysicalExpr, PhysicalOp};
    use plansample_query::RelSet;

    #[test]
    fn paper_example_links_match_figure3() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();

        // Sort in group A: only the TableScan is a sortable input.
        let sort_children = links.children_of(ex.sort_a);
        assert_eq!(sort_children.len(), 1);
        assert_eq!(sort_children[0], vec![ex.table_scan_a]);

        // MergeJoin(A,B): left alternatives IdxScan_A and Sort_A; right
        // only IdxScan_B — "operator 3.4 however can use only the
        // darkened operators 2.3 and 1.3 or 1.4".
        let mj = links.children_of(ex.merge_join_ab);
        assert_eq!(mj[0], vec![ex.idx_scan_a, ex.sort_a]);
        assert_eq!(mj[1], vec![ex.idx_scan_b]);

        // HashJoin(A,B): any of group A (3) × any of group B (2).
        let hj = links.children_of(ex.hash_join_ab);
        assert_eq!(hj[0].len(), 3);
        assert_eq!(hj[1].len(), 2);

        // Root 7.7-analogue: any of group C (2) × any of group AB (2).
        let root = links.children_of(ex.root_c_ab);
        assert_eq!(root[0].len(), 2);
        assert_eq!(root[1].len(), 2);
    }

    #[test]
    fn leaves_have_no_slots() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        assert!(links.children_of(ex.table_scan_a).is_empty());
        assert!(links.children_of(ex.idx_scan_c).is_empty());
        assert_eq!(links.arity_of(ex.table_scan_a), 0);
        assert_eq!(links.arity_of(ex.root_c_ab), 2);
    }

    #[test]
    fn identical_slots_intern_to_one_list() {
        // The two roots HashJoin(C, AB) and HashJoin(AB, C) both have an
        // unconstrained slot on group C and one on group AB; the sibling
        // hash join in group AB shares the unconstrained A and B lists
        // with nothing else, but the roots' four slots intern to two
        // lists.
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let a = links.slot_lists(links.ids().dense(ex.root_c_ab));
        let b = links.slot_lists(links.ids().dense(ex.root_ab_c));
        assert_eq!(a[0], b[1], "group-C slots share one interned list");
        assert_eq!(a[1], b[0], "group-AB slots share one interned list");
        // Interning keeps the arena strictly smaller than the sum of all
        // per-slot list lengths.
        let flat: usize = links
            .all_ids()
            .map(|id| links.children_of(id).iter().map(Vec::len).sum::<usize>())
            .sum();
        assert!(links.num_pooled_links() < flat);
    }

    #[test]
    fn topo_orders_children_before_parents() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        assert_eq!(links.topo().len(), links.num_exprs());
        let mut position = vec![usize::MAX; links.num_exprs()];
        for (i, &d) in links.topo().iter().enumerate() {
            position[d.idx()] = i;
        }
        for (d, _) in links.ids().iter() {
            for &l in links.slot_lists(d) {
                for &child in links.list(l) {
                    assert!(
                        position[child.idx()] < position[d.idx()],
                        "child {child:?} must precede parent {d:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_ids_needs_no_memo_and_covers_everything() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let ids: Vec<PhysId> = links.all_ids().collect();
        assert_eq!(ids.len(), ex.memo.num_physical());
        let from_memo: Vec<PhysId> = ex
            .memo
            .groups()
            .flat_map(|g| g.phys_iter().map(|(id, _)| id))
            .collect();
        assert_eq!(ids, from_memo);
    }

    #[test]
    fn size_bytes_tracks_the_flat_buffers() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        let floor = links.num_pooled_links() * std::mem::size_of::<DenseId>()
            + links.num_exprs() * std::mem::size_of::<u32>();
        assert!(links.size_bytes() >= floor);
    }

    #[test]
    fn cyclic_hand_built_memo_is_rejected() {
        // Two mutually-referencing "joins" in the same group cannot occur
        // via the optimizer, but a hand-built memo can express a cycle
        // through a self-join of groups: g2.join(g0, g2) — child group
        // equals own group with an always-satisfied requirement.
        let ex = paper_example::build();
        let mut memo = Memo::new();
        let g0 = memo.add_group(GroupKey::Rels(RelSet::all(1)));
        memo.add_physical(
            g0,
            PhysicalExpr::new(
                PhysicalOp::TableScan {
                    rel: plansample_query::RelId(0),
                },
                1.0,
                1.0,
            ),
        )
        .unwrap();
        let g1 = memo.add_group(GroupKey::Rels(RelSet::all(2)));
        memo.add_physical(
            g1,
            PhysicalExpr::new(
                PhysicalOp::NestedLoopJoin {
                    left: g0,
                    right: g1,
                },
                1.0,
                1.0,
            ),
        )
        .unwrap();
        memo.set_root(g1);
        assert!(matches!(
            Links::build(&memo, &ex.query),
            Err(SpaceError::CyclicMemo { .. })
        ));
    }
}
